// Stage-based pipeline architecture for the SODA translation (Figure 4).
//
// The paper's five steps are modeled as an ordered list of PipelineStage
// objects operating on one QueryContext:
//
//   LookupStage   (query level)      parse + Step 1 - lookup
//   RankStage     (query level)      Step 2 - rank and top N; materializes
//                                    one InterpretationState per survivor
//   TablesStage   (per interpretation)  Step 3 - tables and joins
//   FiltersStage  (per interpretation)  Step 4 - filters
//   SqlStage      (per interpretation)  Step 5 - SQL generation
//
// Query-level stages run exactly once and may touch the whole context.
// Per-interpretation stages only read the shared context and mutate the
// single InterpretationState they are handed — that contract is what lets
// the SodaEngine fan interpretations out across a thread pool while the
// serial driver (Soda::Search) stays a thin loop over the same stage list.
// Results are merged deterministically in ranked order and deduplicated
// with CanonicalKey, so the outcome is byte-identical at any thread count.

#ifndef SODA_CORE_PIPELINE_H_
#define SODA_CORE_PIPELINE_H_

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/trace.h"
#include "core/config.h"
#include "core/filters_step.h"
#include "core/input_query.h"
#include "core/lookup.h"
#include "core/sql_generator.h"
#include "core/tables_step.h"
#include "sql/ast.h"
#include "sql/result_set.h"

namespace soda {

/// Milliseconds elapsed since `start` — the timing primitive shared by
/// the pipeline drivers.
inline double MsSince(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

/// Canonical, stable identifier of one entry point, used by term bindings
/// (SessionConstraints) and explanation keys: metadata hits render as
/// "label@layer#node", base-data hits as "table.column=value".
/// Deterministic across shard replicas — node ids derive from the shared
/// immutable metadata graph.
std::string EntryPointKey(const EntryPoint& ep);

/// One matched term of an interpretation: the query phrase and the entry
/// point the interpretation chose for it.
struct ExplanationTerm {
  std::string phrase;     // as segmented by Step 1 (folded)
  EntryPoint entry;       // the chosen candidate
  std::string entry_key;  // EntryPointKey(entry) — a valid BindTerm target
};

/// Typed provenance of one ranked answer: matched terms → chosen entry
/// points (RankStage) → final FROM tables, join path edges and generated
/// filters as actually emitted (SqlStage, after sibling pruning). The
/// legacy one-line explanation string is rendered from this record, so
/// the two can never drift apart.
struct Explanation {
  std::vector<ExplanationTerm> terms;
  std::vector<std::string> tables;       // the statement's FROM list, in order
  std::vector<JoinEdge> joins;           // join conditions the generator used
  std::vector<GeneratedFilter> filters;  // generated predicates

  /// The classic provenance line, e.g.
  /// "customers @ domain ontology; zürich @ base data" — byte-identical
  /// to the free-text explanation earlier versions carried.
  std::string Render() const;
};

/// One ranked candidate: an executable SQL statement with provenance.
struct SodaResult {
  SelectStatement statement;
  std::string sql;          // rendered statement
  double score = 0.0;       // ranking score of the interpretation
  std::string explanation;  // provenance.Render(), kept for display/logs
  Explanation provenance;   // the structured record the line is rendered from
  bool fully_connected = true;
  /// Result snippet (up to config.snippet_rows rows) when execution is on.
  ResultSet snippet;
  bool executed = false;
  Status execution_status;
};

/// User-issued constraints on a translation, the session layer's levers
/// (core/session.h). Semantics:
///
///   * PinTable(t)  — every emitted statement must read `t`; during
///     sibling pruning a pinned table counts as constrained, so pinning
///     an inheritance child keeps it in the FROM list.
///   * BanTable(t)  — no emitted statement may read `t`.
///   * Bind(term, entry_key) — interpretations whose choice for `term`
///     is not the candidate with `entry_key` are discarded BEFORE the
///     top-N cut, so binding to a low-ranked entry point surfaces
///     interpretations the unconstrained ranking would have dropped. A
///     binding whose term (or key) matches nothing is inert.
///
/// Tables are stored folded; all three lists are kept sorted + unique by
/// the mutators, which makes Fingerprint() canonical — build instances
/// through the mutators, not aggregate initialization.
struct SessionConstraints {
  struct TermBinding {
    std::string term;       // folded phrase, as in LookupTerm::phrase
    std::string entry_key;  // EntryPointKey of the required candidate
  };

  std::vector<std::string> pinned_tables;
  std::vector<std::string> banned_tables;
  std::vector<TermBinding> bindings;  // sorted by term, one per term

  void PinTable(const std::string& table);
  void UnpinTable(const std::string& table);
  void BanTable(const std::string& table);
  void UnbanTable(const std::string& table);
  void Bind(const std::string& term, const std::string& entry_key);
  void Unbind(const std::string& term);

  bool empty() const {
    return pinned_tables.empty() && banned_tables.empty() && bindings.empty();
  }

  /// Canonical fingerprint of the full constraint set ("" when empty).
  /// Folded into the engines' cache keys, so constrained and
  /// unconstrained answers to one query never share a cache entry.
  std::string Fingerprint() const;

  /// Fingerprint of the bindings alone — the part that affects Steps 2-4.
  /// Pin/ban only gate Step 5, which is what lets a session reuse its
  /// post-Filters states across pin/ban changes.
  std::string BindingsFingerprint() const;
};

/// Per-step wall-clock timings in milliseconds (paper Section 5.2.2
/// splits end-to-end time into lookup, rank, tables, SQL and grouping).
/// Under the concurrent engine the per-interpretation entries are summed
/// CPU time across workers; `wall_ms` carries the elapsed time.
struct StepTimings {
  double lookup_ms = 0.0;
  double rank_ms = 0.0;
  double tables_ms = 0.0;
  double filters_ms = 0.0;
  double sql_ms = 0.0;
  double execute_ms = 0.0;
  double wall_ms = 0.0;

  double soda_total_ms() const {
    return lookup_ms + rank_ms + tables_ms + filters_ms + sql_ms;
  }

  /// Adds `ms` to the slot named by a stage ("lookup", "rank", "tables",
  /// "filters", "sql", "execute"). Unknown names are ignored.
  void Add(std::string_view stage_name, double ms);
};

/// Everything a search produced.
struct SearchOutput {
  InputQuery parsed;
  size_t complexity = 1;  // lookup combinatorics (paper Table 4)
  std::vector<std::string> ignored_words;
  std::vector<SodaResult> results;
  StepTimings timings;

  /// Engine-level observability. Plain Soda::Search leaves the defaults;
  /// SodaEngine::Search fills them in.
  bool from_cache = false;
  size_t cache_hits = 0;    // engine-lifetime counters at response time
  size_t cache_misses = 0;
  size_t threads_used = 1;  // pool width that produced this answer

  /// How many of the five pipeline stages this response skipped: 0 for a
  /// cold translation, 1/4 when a session resumed a cached plan
  /// (lookup, or lookup+rank+tables+filters), 5 on a cache hit.
  size_t stages_skipped = 0;

  /// The base-data value vocabulary this answer depends on: every folded
  /// token Step 1 probed against the classification/inverted indexes
  /// (matched phrases, ignored words, aggregation and group-by
  /// arguments, string comparison operands), sorted and deduplicated.
  /// Recorded cheaply during lookup; the FreshnessManager keys its
  /// reverse map on these to invalidate cached answers whose lookup
  /// could see an appended value (core/freshness.h).
  std::vector<std::string> freshness_terms;
};

/// Canonical form of a statement for result deduplication: FROM order,
/// the operand order of symmetric `=` predicates, and conjunct/item order
/// are all normalized, while GROUP BY and LIMIT stay discriminating.
/// Different entry-point choices that collapse to the same logical
/// statement therefore produce one result. Exposed for tests.
std::string CanonicalKey(const SelectStatement& stmt);

/// The per-interpretation slice of the pipeline state. Per-interpretation
/// stages own exactly one of these; nothing else of theirs is shared.
struct InterpretationState {
  Interpretation interpretation;

  /// Materialized by RankStage: the chosen entry point per non-empty term,
  /// the operator bindings remapped to the compacted entry indexes, and
  /// the typed provenance record (terms filled by RankStage; tables,
  /// joins and filters filled by SqlStage from the emitted statement).
  std::vector<EntryPoint> entries;
  std::vector<OperatorBinding> operators;
  Explanation explanation;

  /// Stage outputs.
  std::optional<TablesOutput> tables;
  std::vector<GeneratedFilter> filters;
  std::optional<SelectStatement> statement;
  bool fully_connected = true;

  /// Set by any stage to retire the interpretation (no entry points, no
  /// join cover, generation failure, ...). Later stages skip it.
  bool dropped = false;

  /// Per-stage time spent on this interpretation, summed into
  /// StepTimings by the drivers.
  double tables_ms = 0.0;
  double filters_ms = 0.0;
  double sql_ms = 0.0;
};

/// All state of one query's trip through the pipeline.
struct QueryContext {
  explicit QueryContext(std::string query) : raw_query(std::move(query)) {}

  std::string raw_query;
  const SodaConfig* config = nullptr;

  /// Optional observability sink. When set, the drivers observe one
  /// "stage.<name>.ms" latency sample per stage execution (query-level
  /// stages once, per-interpretation stages once per state). Must be
  /// thread-safe: the engine observes from worker threads.
  MetricsSink* metrics = nullptr;

  /// Request-trace handle (inactive by default — every span site is then
  /// one branch). The engine parents it under the caller's span when one
  /// is current; the drivers open one span per stage execution from it.
  /// Copied by value into pool closures, which is how the trace crosses
  /// worker threads. Strictly observational: ranked output is
  /// byte-identical with tracing on or off.
  TraceContext trace;

  /// Optional session constraints (nullptr = unconstrained). Constraint
  /// plumbing per stage: LookupStage and FiltersStage are deliberately
  /// constraint-independent (their outputs are reusable across any
  /// constraint change); RankStage applies term bindings before the
  /// top-N cut; TablesStage is binding-dependent only through the states
  /// RankStage built; SqlStage protects pinned tables from sibling
  /// pruning and enforces pin/ban on the emitted statement. The pointee
  /// must outlive the pipeline run; applied identically by every driver,
  /// so constrained output is byte-identical serial vs. engine vs.
  /// session-resume.
  const SessionConstraints* constraints = nullptr;

  InputQuery parsed;
  LookupOutput lookup;
  std::vector<InterpretationState> states;
  StepTimings timings;

  /// Per-query probe memo, created by LookupStage so each distinct
  /// phrase is tokenized and scanned once per query (booked as
  /// index.probe_memo_{hits,misses} when `metrics` is set). Query-level
  /// only — NOT thread-safe; per-interpretation stages must not use it.
  std::unique_ptr<ProbeMemo> probe_memo;

  /// When set, LookupStage records the probed token vocabulary into
  /// freshness_terms (moved into SearchOutput by FinalizeOutput). The
  /// engine turns it on when a FreshnessManager is attached; otherwise
  /// nobody would read the terms, so the collection is skipped.
  bool collect_freshness_terms = false;
  std::vector<std::string> freshness_terms;
};

/// One step of the pipeline. Implementations must be stateless with
/// respect to queries: Run/RunOne are const and called concurrently for
/// different contexts/states by the SodaEngine worker pool.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;

  /// Stable stage name; also selects the StepTimings slot.
  virtual std::string_view name() const = 0;

  /// True for stages that process one InterpretationState at a time.
  virtual bool per_interpretation() const { return false; }

  /// Query-level entry point. The default implementation of a
  /// per-interpretation stage loops RunOne over all live states.
  virtual Status Run(QueryContext* ctx) const;

  /// Per-interpretation entry point. `ctx` is shared and read-only;
  /// `state` is exclusively owned by the caller. Query-level stages
  /// return kUnsupported.
  virtual Status RunOne(const QueryContext& ctx,
                        InterpretationState* state) const;
};

/// Parse + Step 1 - Lookup. Fails the pipeline on malformed input.
class LookupStage : public PipelineStage {
 public:
  explicit LookupStage(const LookupStep* step) : step_(step) {}
  std::string_view name() const override { return "lookup"; }
  Status Run(QueryContext* ctx) const override;

 private:
  const LookupStep* step_;
};

/// Step 2 - Rank and top N. Creates ctx->states, one per surviving
/// interpretation, with entry points materialized and operator bindings
/// remapped; interpretations with no entry points (and no aggregation to
/// carry them) are created already dropped.
class RankStage : public PipelineStage {
 public:
  std::string_view name() const override { return "rank"; }
  Status Run(QueryContext* ctx) const override;
};

/// Step 3 - Tables.
class TablesStage : public PipelineStage {
 public:
  explicit TablesStage(const TablesStep* step) : step_(step) {}
  std::string_view name() const override { return "tables"; }
  bool per_interpretation() const override { return true; }
  Status RunOne(const QueryContext& ctx,
                InterpretationState* state) const override;

 private:
  const TablesStep* step_;
};

/// Step 4 - Filters.
class FiltersStage : public PipelineStage {
 public:
  explicit FiltersStage(const FiltersStep* step) : step_(step) {}
  std::string_view name() const override { return "filters"; }
  bool per_interpretation() const override { return true; }
  Status RunOne(const QueryContext& ctx,
                InterpretationState* state) const override;

 private:
  const FiltersStep* step_;
};

/// Step 5 - SQL: prunes unconstrained inheritance siblings, generates the
/// statement, and applies the drop_disconnected policy.
class SqlStage : public PipelineStage {
 public:
  SqlStage(const TablesStep* tables_step, const SqlGenerator* generator)
      : tables_step_(tables_step), generator_(generator) {}
  std::string_view name() const override { return "sql"; }
  bool per_interpretation() const override { return true; }
  Status RunOne(const QueryContext& ctx,
                InterpretationState* state) const override;

 private:
  const TablesStep* tables_step_;
  const SqlGenerator* generator_;
};

/// Runs the query-level prefix of `stages` (lookup, rank) once, in
/// order, recording per-stage timings. Per-interpretation stages in the
/// list are skipped. Both drivers start with this.
Status RunQueryStages(const std::vector<const PipelineStage*>& stages,
                      QueryContext* ctx);

/// Runs the per-interpretation suffix of `stages` on one state, in order,
/// accumulating stage times into the state. Query-level stages in the
/// list are skipped. This is the unit of work the SodaEngine fans out.
void RunInterpretationStages(const std::vector<const PipelineStage*>& stages,
                             const QueryContext& ctx,
                             InterpretationState* state);

/// Serial driver: query-level stages once, per-interpretation stages over
/// every state, with per-stage timings recorded into ctx->timings. This
/// is exactly the paper's Figure 4 loop.
Status RunPipeline(const std::vector<const PipelineStage*>& stages,
                   QueryContext* ctx);

/// Merges the finished context into a SearchOutput: copies query-level
/// fields, folds per-state timings into the totals, and walks the states
/// in ranked order deduplicating statements by CanonicalKey. Ranked-order
/// merging makes the result list independent of execution schedule.
SearchOutput FinalizeOutput(QueryContext&& ctx);

}  // namespace soda

#endif  // SODA_CORE_PIPELINE_H_
