// SodaSession — one user's interactive conversation with a SodaService.
//
// The paper's target users iterate: issue a keyword query, look at the
// proposed interpretations, and steer — "not that table", "this phrase
// means the ontology concept, not the column". A session packages that
// loop over any SodaService (serial engine or sharded router alike):
//
//   SodaSession session(&engine);
//   auto first = session.Ask("customers Zürich");
//   // every result carries a structured Explanation (matched terms →
//   // chosen entry points → join edges → generated filters)...
//   session.BanTable("fi_customers");     // "not the FI view"
//   auto second = session.Refine();       // re-runs ONLY Step 5
//   session.BindTerm("zürich", session.TermCandidates("zürich")[1].first);
//   auto third = session.Refine();        // re-ranks from cached lookup
//
// Refine re-runs only the stages the constraint change can affect, by
// resuming the TranslationPlan the service captured on the first answer:
//
//   constraint change          stages re-run            stages skipped
//   ─────────────────────────  ───────────────────────  ──────────────
//   pin/ban only               sql                      4
//   term binding changed       rank, tables, filters,   1
//                              sql
//   question changed / plan    full pipeline (plan      0
//   stale (base data moved)    recaptured)
//
// and the refined output is byte-identical to translating the same query
// cold under the same constraints — the plan is an optimization, never a
// semantic.
//
// Not thread-safe: a session models one user's conversation. Use one
// session per concurrent user; the shared service underneath is fully
// concurrent. Destroy sessions before the FreshnessManager tracking the
// service (their plans deregister themselves on destruction).

#ifndef SODA_CORE_SESSION_H_
#define SODA_CORE_SESSION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/service.h"

namespace soda {

class SodaSession {
 public:
  /// `service` must outlive the session.
  explicit SodaSession(SodaService* service) : service_(service) {}

  /// Starts a fresh question: clears the constraints and the cached
  /// plan, translates cold, and captures a new plan for later Refines.
  Result<SearchOutput> Ask(const std::string& query);

  /// Re-translates the current question under the current constraints,
  /// resuming the cached plan where the constraint change allows (see
  /// the stage-skip matrix above). Errors if no question was Asked yet.
  Result<SearchOutput> Refine();

  /// As Refine(), but replaces the question first, keeping the
  /// constraints. A changed question cannot resume the old plan, so the
  /// pipeline runs in full and a new plan is captured.
  Result<SearchOutput> Refine(const std::string& query);

  /// Constraint levers (semantics in SessionConstraints, pipeline.h).
  /// Chainable; they take effect on the next Refine.
  SodaSession& PinTable(const std::string& table);
  SodaSession& UnpinTable(const std::string& table);
  SodaSession& BanTable(const std::string& table);
  SodaSession& UnbanTable(const std::string& table);
  SodaSession& BindTerm(const std::string& term, const std::string& entry_key);
  SodaSession& UnbindTerm(const std::string& term);
  SodaSession& ClearConstraints();

  /// The entry-point candidates Step 1 found for `term` in the current
  /// question, as (entry_key, human-readable description) pairs in
  /// candidate order — entry_key is a valid BindTerm target. Empty when
  /// no plan is held or the term matched nothing.
  std::vector<std::pair<std::string, std::string>> TermCandidates(
      const std::string& term) const;

  const SessionConstraints& constraints() const { return constraints_; }
  const std::string& query() const { return query_; }
  /// Refine calls answered so far (Ask resets nothing here — it is a
  /// lifetime count).
  size_t refines() const { return refines_; }
  /// stages_skipped of the last answer (0 before the first).
  size_t last_stages_skipped() const { return last_stages_skipped_; }

 private:
  Result<SearchOutput> Run();

  SodaService* service_;
  std::string query_;
  SessionConstraints constraints_;
  std::shared_ptr<TranslationPlan> plan_;
  size_t refines_ = 0;
  size_t last_stages_skipped_ = 0;
};

}  // namespace soda

#endif  // SODA_CORE_SESSION_H_
