// SodaService — the abstract serving surface of the SODA stack.
//
// Both engines implement this interface:
//
//   SodaEngine         (core/engine.h)          one worker pool + one cache
//   ShardedSodaEngine  (core/sharded_engine.h)  N replicas behind a router
//
// Everything above the engines — the interactive session layer
// (core/session.h), the FreshnessManager (core/freshness.h), the demos
// and the determinism tests — programs against SodaService, so serial
// vs. sharded is a construction-time choice only: build whichever engine
// fits the deployment and hand it around as a SodaService*.
//
// The interface also carries the session machinery shared by both
// implementations: SessionConstraints travel with every Search (the
// unconstrained overload is a non-virtual convenience), SearchSession
// additionally captures/reuses a TranslationPlan — the session-cached
// Steps 1-2 (+3-4) output that lets a Refine re-run only the stages a
// constraint change can affect — and ConstrainedCacheKey defines how the
// constraint fingerprint is folded into the result-cache key.

#ifndef SODA_CORE_SERVICE_H_
#define SODA_CORE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "core/pipeline.h"

namespace soda {

class FreshnessManager;
struct ChangeEvent;

/// Delivered once per (query_index, result_index) pair by the async entry
/// points, after that result's snippet finished executing (or was skipped
/// because execution is disabled — check result.executed). Invoked from
/// pool threads (or the caller's thread on inline pools); implementations
/// must be thread-safe across results. Exceptions thrown by the callback
/// are caught, counted on the barrier, and never abort the stream.
using SnippetCallback = std::function<void(
    size_t query_index, size_t result_index, const SodaResult& result)>;

/// Completion barrier for async snippet streaming. One barrier can span
/// several SearchAsync/SearchAllAsync submissions; Wait() returns once
/// every expected callback has been delivered (including ones that
/// threw). The barrier must outlive the engine calls it was passed to and
/// must not be destroyed before Wait() has returned.
class SnippetBarrier {
 public:
  SnippetBarrier() = default;
  SnippetBarrier(const SnippetBarrier&) = delete;
  SnippetBarrier& operator=(const SnippetBarrier&) = delete;

  /// Blocks until every expected snippet callback has been delivered.
  /// Deterministic: after Wait() returns, no further callbacks fire for
  /// the submissions registered so far.
  void Wait();

  /// Callbacks registered but not yet delivered.
  size_t pending() const;
  /// Callbacks delivered so far (throwing ones included).
  size_t delivered() const;
  /// Callbacks that exited via an exception. The stream keeps draining;
  /// the first exception is retained for inspection.
  size_t callback_exceptions() const;
  std::exception_ptr first_exception() const;

 private:
  friend class SodaEngine;

  void Expect(size_t n);
  void Deliver(std::exception_ptr exception);

  mutable std::mutex mu_;
  std::condition_variable done_;
  size_t expected_ = 0;
  size_t delivered_ = 0;
  size_t exceptions_ = 0;
  std::exception_ptr first_exception_;
};

/// A session's cached prefix of one question's translation: the parsed
/// input and Step-1 lookup (constraint-independent), plus the
/// post-Filters interpretation states ranked under `bindings_fp`. Held by
/// SodaSession via shared_ptr and handed back to SearchSession, which
/// resumes from it — pin/ban-only changes re-run Step 5 alone, binding
/// changes re-rank from Step 2 — with output byte-identical to a cold
/// constrained translation.
///
/// Freshness: when a FreshnessManager watches the owning engine, the plan
/// is registered under its lookup's term vocabulary in the same reverse
/// maps that invalidate cached answers; a base-data mutation that could
/// change the lookup flips `valid` (under the exclusive data lock, so
/// no resume can race it) and the next Refine re-translates. Without a
/// manager, `captured_at_sequence` is compared against the change log
/// instead — any mutation voids the plan. Plans deregister themselves on
/// destruction; destroy sessions/plans before the manager they are
/// registered with.
struct TranslationPlan {
  std::string key;  // NormalizedQueryKey of the question
  InputQuery parsed;
  LookupOutput lookup;
  std::string bindings_fp;  // BindingsFingerprint the states were ranked under
  std::vector<InterpretationState> states;  // post-Filters, pre-Sql snapshot
  std::vector<std::string> freshness_terms;
  uint64_t captured_at_sequence = 0;
  bool watched = false;  // registered with a FreshnessManager
  std::atomic<bool> valid{true};
  std::function<void()> deregister;

  TranslationPlan() = default;
  TranslationPlan(const TranslationPlan&) = delete;
  TranslationPlan& operator=(const TranslationPlan&) = delete;
  ~TranslationPlan() {
    if (deregister) deregister();
  }
};

/// One shard's position in the router's circuit breaker, as reported by
/// SodaService::health(). States: "closed" (healthy, serving),
/// "quarantined" (recent failures; traffic re-routes to replicas until
/// the backoff elapses), "probing" (backoff elapsed; the next sub-batch
/// is a trial — success re-admits, failure re-quarantines with doubled
/// backoff).
struct ShardHealthInfo {
  size_t shard = 0;
  std::string state;  // "closed" | "quarantined" | "probing"
  size_t consecutive_failures = 0;
  uint64_t total_failures = 0;
  /// Current quarantine backoff (0 when closed).
  double backoff_ms = 0.0;
  /// Time until the next probe is admitted (0 when closed/probing or
  /// already due).
  double retry_in_ms = 0.0;
};

/// Service-level health: what /healthz serves. `degraded` means the
/// service still answers, but part of the fleet is quarantined (or
/// probing), so some traffic is re-routed and latency/cache locality
/// suffer. A single-engine service is always healthy here — it has no
/// failure domains to isolate.
struct ServiceHealth {
  bool degraded = false;
  std::vector<ShardHealthInfo> shards;
};

/// The result-cache key of a constrained search: the normalized query
/// alone when the constraints are empty (bit-compatible with every
/// pre-session cache key), else the normalized query + 0x1F (ASCII unit
/// separator — cannot appear in a whitespace-normalized query) + the
/// canonical constraint fingerprint. Pinned and unpinned variants of one
/// query therefore never share a cache entry, while InvalidateWhere
/// predicates that substring-match table/term names keep covering both.
std::string ConstrainedCacheKey(const std::string& normalized_key,
                                const SessionConstraints& constraints);

class SodaService {
 public:
  virtual ~SodaService() = default;

  /// Unconstrained search — the classic entry point, now a convenience
  /// over the constrained overload.
  Result<SearchOutput> Search(const std::string& query) const {
    return Search(query, SessionConstraints{});
  }

  /// Brace-list convenience: service.SearchAll({"a", "b"}). One shared
  /// helper — implementations only provide the span overload.
  std::vector<Result<SearchOutput>> SearchAll(
      std::initializer_list<std::string> queries) const {
    return SearchAll(
        std::span<const std::string>(queries.begin(), queries.size()));
  }

  /// Cached, concurrent search under `constraints` (empty = classic
  /// unconstrained behavior, same cache entries). Constrained answers
  /// are cached under ConstrainedCacheKey.
  virtual Result<SearchOutput> Search(
      const std::string& query, const SessionConstraints& constraints) const = 0;

  /// Batched search: one dashboard refresh in, per-query outputs out, in
  /// input order, with in-batch dedup of identical normalized queries.
  virtual std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const = 0;

  /// Async search: translated, ranked SQL returns immediately; snippets
  /// stream through `on_snippet`; `barrier` is the completion point.
  virtual Result<SearchOutput> SearchAsync(const std::string& query,
                                           SnippetCallback on_snippet,
                                           SnippetBarrier* barrier) const = 0;

  /// Batched async search.
  virtual std::vector<Result<SearchOutput>> SearchAllAsync(
      std::span<const std::string> queries, SnippetCallback on_snippet,
      SnippetBarrier* barrier) const = 0;

  /// Session entry point: as Search(query, constraints), but additionally
  /// maintains `*plan` (required non-null; *plan may be null). When the
  /// held plan matches `query` and is still fresh, the engine resumes
  /// from it — skipping lookup (bindings changed) or lookup + rank +
  /// tables + filters (pins/bans only) — and books
  /// session.{refines,stages_skipped,constraint_hits}. Otherwise the
  /// query translates cold and a fresh plan is captured into *plan.
  /// Output is byte-identical either way. On a sharded engine the plan's
  /// query routes by its normalized text only (the fingerprint is NOT
  /// hashed), so every constrained variant of one question shares a
  /// shard: session affinity.
  virtual Result<SearchOutput> SearchSession(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const = 0;

  /// Cache observability and control (fleet-level sums on the router).
  virtual CacheStats cache_stats() const = 0;
  virtual void ClearCache() const = 0;

  /// Keyed cache invalidation: evicts every cached answer whose key
  /// satisfies `pred`, returns how many. Keys are normalized queries,
  /// extended per ConstrainedCacheKey for constrained answers.
  virtual size_t InvalidateWhere(
      const std::function<bool(const std::string&)>& pred) const = 0;

  /// Incremental base-data maintenance: forwards one storage ChangeEvent
  /// to the inverted index (every replica's, on the router). MUST run
  /// under the database change log's exclusive data lock (i.e. from a
  /// ChangeListener). Returns the number of new posting entries.
  virtual size_t ApplyBaseDataDelta(const ChangeEvent& event) = 0;

  /// Registers the freshness manager cache inserts (and session plans)
  /// are reported to. Install before serving traffic; nullptr detaches.
  /// Normally called by FreshnessManager::Track.
  virtual void set_freshness(FreshnessManager* freshness) = 0;

  /// Replaces the metrics sink on the engine (every shard, on the
  /// router). Install before serving traffic; nullptr restores the
  /// built-in in-memory sink.
  virtual void set_metrics_sink(std::shared_ptr<MetricsSink> sink) = 0;

  /// Snapshot of the built-in in-memory sink(s).
  virtual MetricsSnapshot metrics_snapshot() const = 0;

  /// Failure-domain health. The router reports its per-shard circuit
  /// breaker here; a plain engine has no failure domains and stays at
  /// the healthy default. The HTTP front end renders this as /healthz's
  /// ok|degraded verdict.
  virtual ServiceHealth health() const { return ServiceHealth{}; }

  /// Effective per-pool parallelism.
  virtual size_t num_threads() const = 0;

  /// Instantaneous backlog: tasks queued but not yet claimed across the
  /// engine's worker pools (the router adds its dispatch pool and every
  /// shard's pool). A load signal, not an exact count — sampled without
  /// a global lock, so concurrent submits/claims may skew it by a few.
  /// The HTTP front end's admission control sheds against this plus its
  /// own in-flight count (net/http_server.h).
  virtual size_t queue_depth() const = 0;
};

}  // namespace soda

#endif  // SODA_CORE_SERVICE_H_
