#include "core/lookup.h"

#include <algorithm>

#include "common/strings.h"

namespace soda {

namespace {

// Converts a literal input element to a typed Value.
Value LiteralValue(const InputElement& element) {
  switch (element.kind) {
    case InputElement::Kind::kDate:
      return Value::DateV(element.date);
    case InputElement::Kind::kNumber:
      return element.number_is_integer ? Value::Int(element.integer)
                                       : Value::Real(element.number);
    default:
      return Value::Null();
  }
}

bool IsLiteral(const InputElement& element) {
  return element.kind == InputElement::Kind::kDate ||
         element.kind == InputElement::Kind::kNumber;
}

}  // namespace

Result<LookupOutput> LookupStep::Run(const InputQuery& query,
                                     ProbeMemo* memo) const {
  LookupOutput out;

  // Pass 1: segment keyword runs into phrases and record terms.
  // Track, per element index, the range of terms it produced so operator
  // binding can find "the keyword before the operator".
  std::vector<std::pair<size_t, size_t>> term_range(query.elements.size(),
                                                    {0, 0});
  for (size_t e = 0; e < query.elements.size(); ++e) {
    const InputElement& element = query.elements[e];
    if (element.kind != InputElement::Kind::kKeywords) {
      term_range[e] = {out.terms.size(), out.terms.size()};
      continue;
    }
    size_t begin = out.terms.size();
    std::vector<std::string> phrases =
        index_->SegmentKeywords(element.words, &out.ignored_words, memo);
    for (auto& phrase : phrases) {
      LookupTerm term;
      term.phrase = phrase;
      term.candidates =
          memo != nullptr ? memo->Lookup(phrase) : index_->Lookup(phrase);
      out.terms.push_back(std::move(term));
    }
    term_range[e] = {begin, out.terms.size()};
  }

  // Pass 2: bind comparison and between operators.
  for (size_t e = 0; e < query.elements.size(); ++e) {
    const InputElement& element = query.elements[e];
    if (element.kind == InputElement::Kind::kComparison) {
      // LHS: the last phrase produced before this operator.
      size_t lhs = term_range[e].first;
      if (lhs == 0) {
        return Status::InvalidArgument(
            "comparison operator has no keyword on its left in '" +
            query.raw + "'");
      }
      --lhs;
      if (e + 1 >= query.elements.size()) {
        return Status::InvalidArgument(
            "comparison operator has no operand on its right in '" +
            query.raw + "'");
      }
      const InputElement& rhs = query.elements[e + 1];
      OperatorBinding binding;
      binding.term_index = lhs;
      binding.op = element.op;
      if (IsLiteral(rhs)) {
        binding.literal = LiteralValue(rhs);
      } else if (rhs.kind == InputElement::Kind::kKeywords &&
                 !rhs.words.empty()) {
        // The operand is a word (paper Query 2 writes "salary >= x").
        // It is consumed as a string literal, not classified.
        binding.literal = Value::Str(rhs.words[0]);
        // Remove the consumed word's term if segmentation matched it.
        // (Operands are typically values, which segmentation does match
        // when they occur in the base data; drop that term.)
        size_t begin = term_range[e + 1].first;
        size_t end = term_range[e + 1].second;
        if (end > begin && out.terms[begin].phrase ==
                               FoldForMatch(rhs.words[0])) {
          out.terms.erase(out.terms.begin() + static_cast<long>(begin));
          for (size_t k = e + 1; k < query.elements.size(); ++k) {
            if (term_range[k].first > begin) --term_range[k].first;
            if (term_range[k].second > begin) --term_range[k].second;
          }
          for (auto& op : out.operators) {
            if (op.term_index > begin) --op.term_index;
          }
        }
      } else {
        return Status::InvalidArgument(
            "unsupported operand after comparison operator");
      }
      out.terms[binding.term_index].has_operator = true;
      out.operators.push_back(std::move(binding));
      continue;
    }
    if (element.kind == InputElement::Kind::kBetween) {
      size_t lhs = term_range[e].first;
      if (lhs == 0) {
        return Status::InvalidArgument(
            "'between' has no keyword on its left in '" + query.raw + "'");
      }
      --lhs;
      if (e + 2 >= query.elements.size() ||
          !IsLiteral(query.elements[e + 1]) ||
          !IsLiteral(query.elements[e + 2])) {
        return Status::InvalidArgument(
            "'between' requires two literals, e.g. between date(2010-01-01) "
            "date(2010-12-31)");
      }
      OperatorBinding binding;
      binding.term_index = lhs;
      binding.op = CompareOp::kGe;
      binding.is_between = true;
      binding.literal = LiteralValue(query.elements[e + 1]);
      binding.literal_high = LiteralValue(query.elements[e + 2]);
      out.terms[binding.term_index].has_operator = true;
      out.operators.push_back(std::move(binding));
      continue;
    }
  }

  // Pass 3: combinatorial product. Aggregation and group-by arguments are
  // resolved by the SQL generator (which picks the best candidate), but
  // their candidate counts contribute to the query complexity measure
  // (paper Table 4 reports complexity 25 for the pure-aggregation Q10.0).
  out.complexity = 1;
  bool overflowed = false;
  auto account = [&](size_t n) {
    n = std::max<size_t>(n, 1);
    if (out.complexity > 1000000 / n) overflowed = true;
    out.complexity *= n;
  };
  auto count_matches = [&](const std::string& phrase) {
    return memo != nullptr ? memo->CountMatches(phrase)
                           : index_->CountMatches(phrase);
  };
  for (const LookupTerm& term : out.terms) {
    account(term.candidates.size());
  }
  for (const InputElement& element : query.elements) {
    if (element.kind == InputElement::Kind::kAggregation &&
        !element.agg_argument.empty()) {
      // Count-only probe: the accounting needs the candidate count, not
      // the (potentially large) materialized entry-point vectors.
      account(count_matches(element.agg_argument));
    }
    if (element.kind == InputElement::Kind::kGroupBy) {
      for (const std::string& phrase : element.group_by_phrases) {
        account(count_matches(phrase));
      }
    }
  }
  if (overflowed) out.complexity = 1000000;

  // Enumerate the product, capped. Terms with zero candidates contribute
  // no choice (their keyword is effectively unmatchable — kept so the
  // caller can report it, skipped in interpretations).
  std::vector<size_t> sizes;
  for (const LookupTerm& term : out.terms) {
    sizes.push_back(term.candidates.size());
  }
  std::vector<size_t> cursor(out.terms.size(), 0);
  while (out.interpretations.size() < config_->max_interpretations) {
    Interpretation interpretation;
    interpretation.choice = cursor;
    out.interpretations.push_back(std::move(interpretation));
    // Advance the mixed-radix counter.
    size_t k = 0;
    while (k < cursor.size()) {
      if (sizes[k] <= 1) {
        ++k;
        continue;
      }
      if (++cursor[k] < sizes[k]) break;
      cursor[k] = 0;
      ++k;
    }
    if (k == cursor.size()) break;  // wrapped around: done
  }
  return out;
}

double LayerWeight(MetadataLayer layer, const SodaConfig& config) {
  switch (layer) {
    case MetadataLayer::kDomainOntology:
      return config.weight_domain_ontology;
    case MetadataLayer::kConceptualSchema:
      return config.weight_conceptual;
    case MetadataLayer::kLogicalSchema:
      return config.weight_logical;
    case MetadataLayer::kPhysicalSchema:
      return config.weight_physical;
    case MetadataLayer::kBaseData:
      return config.weight_base_data;
    case MetadataLayer::kDbpedia:
      return config.weight_dbpedia;
    case MetadataLayer::kOther:
      return 0.1;
  }
  return 0.1;
}

std::vector<Interpretation> RankAndTopN(const LookupOutput& lookup,
                                        const SodaConfig& config) {
  std::vector<Interpretation> ranked = lookup.interpretations;
  for (Interpretation& interpretation : ranked) {
    double total = 0.0;
    size_t counted = 0;
    for (size_t t = 0; t < lookup.terms.size(); ++t) {
      const LookupTerm& term = lookup.terms[t];
      if (term.candidates.empty()) continue;
      const EntryPoint& ep = term.candidates[interpretation.choice[t]];
      total += LayerWeight(ep.layer, config);
      ++counted;
    }
    interpretation.score = counted == 0 ? 0.0 : total / counted;
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Interpretation& a, const Interpretation& b) {
                     return a.score > b.score;
                   });
  if (ranked.size() > config.top_n) ranked.resize(config.top_n);
  return ranked;
}

}  // namespace soda
