#include "core/service.h"

#include <utility>

namespace soda {

// ---------------------------------------------------------------------------
// SnippetBarrier
// ---------------------------------------------------------------------------

void SnippetBarrier::Expect(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  expected_ += n;
}

void SnippetBarrier::Deliver(std::exception_ptr exception) {
  std::lock_guard<std::mutex> lock(mu_);
  ++delivered_;
  if (exception) {
    ++exceptions_;
    if (!first_exception_) first_exception_ = std::move(exception);
  }
  if (delivered_ >= expected_) done_.notify_all();
}

void SnippetBarrier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_.wait(lock, [&] { return delivered_ >= expected_; });
}

size_t SnippetBarrier::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return expected_ - delivered_;
}

size_t SnippetBarrier::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

size_t SnippetBarrier::callback_exceptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exceptions_;
}

std::exception_ptr SnippetBarrier::first_exception() const {
  std::lock_guard<std::mutex> lock(mu_);
  return first_exception_;
}

// ---------------------------------------------------------------------------
// Cache-key composition
// ---------------------------------------------------------------------------

std::string ConstrainedCacheKey(const std::string& normalized_key,
                                const SessionConstraints& constraints) {
  if (constraints.empty()) return normalized_key;
  return normalized_key + '\x1f' + constraints.Fingerprint();
}

}  // namespace soda
