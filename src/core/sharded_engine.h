// ShardedSodaEngine — a query router over N replicated SodaEngines.
//
// The SODA pipeline is embarrassingly parallel across queries: every
// engine is shared-nothing over the same `const Database*` + metadata
// graph, so scaling past one worker pool is a routing problem, not an
// algorithm problem. This tier fronts N SodaEngine replicas (each with
// its own pool and its own LRU result cache) behind one engine-shaped
// surface:
//
//   1. routing — every query is assigned to exactly one shard by a
//      folded 64-bit FNV-1a hash of its whitespace-normalized string
//      (NormalizedQueryKey). Deterministic and platform-independent, so
//      a query's cache entry lives on exactly one shard, repeats always
//      hit the shard that computed them, and the shard map is stable
//      across runs and machines. Session traffic routes by the same key
//      — the constraint fingerprint is deliberately NOT hashed — so
//      every constrained variant of one question lands on one shard
//      (session affinity: a Refine always finds the shard whose cache
//      and plans know the question);
//   2. batched admission — SearchAll splits a batch into per-shard
//      sub-batches, runs them concurrently on a persistent router-side
//      dispatch pool, and re-merges the per-query Results into input
//      order. Each shard still applies its own in-batch dedup and cache,
//      so the ranked output is byte-identical to a single engine at any
//      shard count × thread count;
//   3. failure domains — every shard is wrapped in a small circuit
//      breaker (closed → quarantined → probing). A sub-batch whose
//      dispatch fails (throws, errors through the "shard.dispatch"
//      failpoint, or outlives the per-sub-batch deadline) is retried
//      with exponential backoff on the next healthy replica. Replicas
//      are shared-nothing full copies of the same database, so the
//      re-route is correct — a cache miss, never a wrong answer. A
//      shard that fails shard_failure_threshold times in a row is
//      quarantined: traffic avoids it until its backoff elapses, then
//      one probe sub-batch decides between re-admission and a doubled
//      backoff. health() reports the breaker per shard;
//      router.{shard_failures,retries,quarantines,readmissions,
//      rerouted_queries} count the machinery;
//   4. aggregated observability — metrics_snapshot() merges every
//      shard's sink plus the router's own samples
//      (router.shard_batch_size, router.shard_queries, router.batches)
//      into one fleet view; cache_stats() sums the per-shard books;
//   5. invalidation fan-out — ClearCache() and InvalidateWhere(pred)
//      forward to every shard, so base-data update notifications keep
//      working when the cache is spread over N replicas.
//
// Thread-safety matches SodaEngine: all entry points are const and safe
// to call from many caller threads at once.

#ifndef SODA_CORE_SHARDED_ENGINE_H_
#define SODA_CORE_SHARDED_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/service.h"

namespace soda {

/// The router's shard choice for a *normalized* query key (callers hash
/// NormalizedQueryKey(query), not the raw string): 64-bit FNV-1a folded
/// to 32 bits (high xor low) before the modulo, so short keys still
/// spread over the full shard range. Exposed for tests and for external
/// placement logic (e.g. cache warmers) that must agree with the router.
size_t ShardOfKey(const std::string& normalized_key, size_t num_shards);

class ShardedSodaEngine : public SodaService {
 public:
  /// Builds config.num_shards SodaEngine replicas over the same catalog
  /// and graph (each replica copies the pattern library and builds its
  /// own indexes). Construction failures of any replica propagate.
  /// num_shards 0 and 1 both build a single shard. With num_threads=0
  /// ("use the hardware"), each shard gets hardware_concurrency /
  /// num_shards workers (min 1), so the fleet's pool roughly matches the
  /// machine instead of oversubscribing it num_shards-fold.
  static Result<std::unique_ptr<ShardedSodaEngine>> Create(
      const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
      SodaConfig config);

  /// Wraps already-constructed replicas. `shards` must be non-empty and
  /// hold no nulls (asserted): every routing path indexes into it. The
  /// failure-isolation policy (thresholds, backoffs, deadline) is read
  /// from the first replica's config — all shards share one config.
  explicit ShardedSodaEngine(std::vector<std::unique_ptr<SodaEngine>> shards);

  using SodaService::Search;
  using SodaService::SearchAll;

  /// Routes the query to its shard and delegates. Same contract as
  /// SodaEngine::Search; repeats of one query always land on the same
  /// shard (constraints excluded from the routing key), so its cache
  /// behaves exactly like a single engine's. When the home shard is
  /// quarantined the query fails over to a healthy replica.
  Result<SearchOutput> Search(
      const std::string& query,
      const SessionConstraints& constraints) const override;

  /// Session search with affinity: the plan's question routes by its
  /// normalized text, so every Refine resumes on the shard that captured
  /// the plan. Books router.session_queries.
  Result<SearchOutput> SearchSession(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const override;

  /// Batched admission point: splits the batch by shard, runs the
  /// occupied shards' SearchAll concurrently, and merges the per-query
  /// outputs back into input order. Byte-identical ranked results to a
  /// single engine; in-batch dedup still applies (identical normalized
  /// queries route identically, so they meet in one sub-batch). A
  /// sub-batch whose shard fails or stalls past the configured deadline
  /// is re-dispatched to a healthy replica; only when every attempt is
  /// exhausted do its queries come back as per-query Unavailable errors
  /// — the rest of the batch is unaffected.
  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override;

  /// Async admission: per-shard SearchAllAsync with the callback's
  /// query_index remapped to the caller's batch position. All shards'
  /// translations complete before this returns (so `barrier` has its
  /// full expectation registered); snippets stream afterwards from every
  /// shard's pool concurrently. Failover applies to dispatch failures
  /// that happen before a shard registered its snippet callbacks; the
  /// stall deadline is sync-only (an async sub-batch cannot be abandoned
  /// once its callbacks are expected on the barrier).
  std::vector<Result<SearchOutput>> SearchAllAsync(
      std::span<const std::string> queries, SnippetCallback on_snippet,
      SnippetBarrier* barrier) const override;

  /// Single-query async, routed to its shard (with failover).
  Result<SearchOutput> SearchAsync(const std::string& query,
                                   SnippetCallback on_snippet,
                                   SnippetBarrier* barrier) const override;

  /// Sum of every shard's cache books (hits/misses/dedup/invalidations;
  /// capacity and size sum too — they describe the fleet).
  CacheStats cache_stats() const override;

  /// Fans out to every shard.
  void ClearCache() const override;

  /// Keyed invalidation fan-out: forwards `pred` (over normalized query
  /// keys) to every shard and returns the total number of evicted
  /// entries. Each key lives on exactly one shard, so the total equals
  /// what a single engine would have evicted.
  size_t InvalidateWhere(
      const std::function<bool(const std::string&)>& pred) const override;

  /// Incremental base-data maintenance fan-out: every replica owns its
  /// own inverted index over the shared database, so one storage
  /// ChangeEvent must reach all of them. Same contract as
  /// SodaEngine::ApplyBaseDataDelta (call under the change log's
  /// exclusive data lock, i.e. from a ChangeListener). Returns the sum
  /// of new posting entries across shards.
  size_t ApplyBaseDataDelta(const ChangeEvent& event) override;

  /// Registers the freshness manager on every shard (each replica
  /// reports its own cache inserts; the manager dedups by key). nullptr
  /// detaches. Normally called by FreshnessManager::Track.
  void set_freshness(FreshnessManager* freshness) override;

  /// Installs `sink` on every shard — the exporter hook for fleet
  /// deployments (MetricsSink implementations are thread-safe, so one
  /// instance may serve all shards). Same caveat as
  /// SodaEngine::set_metrics_sink: install before serving traffic.
  /// nullptr restores each shard's built-in sink. The router's own
  /// router.* samples stay in its internal sink either way and keep
  /// appearing in metrics_snapshot().
  void set_metrics_sink(std::shared_ptr<MetricsSink> sink) override;

  /// Fleet view: every shard's snapshot merged (counters add, histograms
  /// merge on the shared bucket grid) plus the router's own router.*
  /// series — including router.shards_quarantined, the point-in-time
  /// count of shards currently outside the closed state (how quarantine
  /// state reaches /metrics). Shards whose built-in sink was replaced
  /// via set_metrics_sink stop contributing new samples here — snapshot
  /// the custom sink instead.
  MetricsSnapshot metrics_snapshot() const override;

  /// Per-shard circuit-breaker state; degraded when any shard is not
  /// closed. The HTTP front end's /healthz renders this.
  ServiceHealth health() const override;

  size_t num_shards() const { return shards_.size(); }

  /// Per-shard worker width (all shards share one config).
  size_t num_threads() const override { return shards_.front()->num_threads(); }

  /// Fleet backlog: the router's own dispatch-pool queue plus every
  /// shard pool's queue (see SodaService::queue_depth). This is the
  /// depth signal the HTTP front end's admission watermark compares
  /// against — a batch wave that outruns the shards shows up here
  /// before latency does.
  size_t queue_depth() const override;

  /// Direct access to one replica, for tests and per-shard inspection.
  const SodaEngine& shard(size_t i) const { return *shards_[i]; }

 private:
  enum class BreakerState { kClosed, kQuarantined, kProbing };

  struct ShardBreaker {
    BreakerState state = BreakerState::kClosed;
    size_t consecutive_failures = 0;
    uint64_t total_failures = 0;
    double backoff_ms = 0.0;
    std::chrono::steady_clock::time_point retry_at{};
  };

  /// Failure-isolation knobs, copied out of SodaConfig at construction.
  struct FailoverPolicy {
    size_t failure_threshold = 3;
    double backoff_initial_ms = 100.0;
    double backoff_max_ms = 5000.0;
    size_t retry_limit = 2;
    double retry_backoff_ms = 1.0;
    double dispatch_deadline_ms = 0.0;
  };

  /// Shared split/route/merge core of SearchAll and SearchAllAsync.
  std::vector<Result<SearchOutput>> DispatchBatch(
      std::span<const std::string> queries, bool async,
      SnippetCallback on_snippet, SnippetBarrier* barrier) const;

  /// Single-query dispatch with failover, shared by Search /
  /// SearchSession / SearchAsync. A per-query error Result from `call`
  /// is a query outcome (breaker success); an exception or armed
  /// failpoint is a shard failure that retries on the next replica.
  Result<SearchOutput> RouteSingle(
      size_t home,
      const std::function<Result<SearchOutput>(const SodaEngine&)>& call)
      const;

  /// Submits one sub-batch dispatch attempt on `target` to the dispatch
  /// pool and returns its (type-erased — the attempt struct is an
  /// implementation detail of the .cc) completion handle.
  std::shared_ptr<void> LaunchAttempt(
      size_t target, std::shared_ptr<const std::vector<std::string>> queries,
      bool async, SnippetCallback on_snippet, SnippetBarrier* barrier) const;

  /// Joins one home shard's in-flight first attempt and walks the retry
  /// chain on failure: re-dispatches with exponential backoff on the
  /// next admitted replica, abandons (sync only) attempts that outlive
  /// the dispatch deadline, and reports every outcome to the breaker.
  /// `queries` is owned by shared_ptr so an abandoned stalled attempt
  /// never reads a dead frame. Returns per-query outputs; after the
  /// retry budget every query carries an Unavailable status.
  std::vector<Result<SearchOutput>> RunSubBatchWithFailover(
      size_t home, std::shared_ptr<const std::vector<std::string>> queries,
      bool async, SnippetCallback on_snippet, SnippetBarrier* barrier,
      size_t first_target, std::shared_ptr<void> first_attempt) const;

  /// Breaker admission: first shard at or after `start` (mod N) the
  /// breaker lets through (a quarantined shard whose backoff elapsed is
  /// admitted as the probe). When every shard is quarantined and none
  /// is due, returns the kNoShard sentinel — callers fail fast with
  /// Unavailable rather than force traffic onto a known-bad replica.
  size_t AcquireTarget(size_t start) const;

  void ReportShardSuccess(size_t shard) const;

  /// Charges one failure to the shard's breaker. Returns true when this
  /// failure tripped (or, for a failed probe, re-tripped) quarantine —
  /// callers record that decision as a trace span event.
  bool ReportShardFailure(size_t shard) const;

  std::vector<std::unique_ptr<SodaEngine>> shards_;
  std::shared_ptr<InMemoryMetricsSink> router_sink_;
  FailoverPolicy policy_;

  mutable std::mutex breaker_mu_;
  mutable std::vector<ShardBreaker> breakers_;

  // Runs per-shard sub-batch dispatches (Submit per attempt; the waiting
  // batch thread can abandon a stalled attempt instead of blocking
  // forever). Persistent: no per-batch thread create/join on the serving
  // hot path, and no std::terminate if thread creation fails mid-batch.
  // Declared last so in-flight dispatches drain before the members they
  // touch are destroyed.
  mutable ThreadPool dispatch_pool_;
};

}  // namespace soda

#endif  // SODA_CORE_SHARDED_ENGINE_H_
