// ShardedSodaEngine — a query router over N replicated SodaEngines.
//
// The SODA pipeline is embarrassingly parallel across queries: every
// engine is shared-nothing over the same `const Database*` + metadata
// graph, so scaling past one worker pool is a routing problem, not an
// algorithm problem. This tier fronts N SodaEngine replicas (each with
// its own pool and its own LRU result cache) behind one engine-shaped
// surface:
//
//   1. routing — every query is assigned to exactly one shard by a
//      folded 64-bit FNV-1a hash of its whitespace-normalized string
//      (NormalizedQueryKey). Deterministic and platform-independent, so
//      a query's cache entry lives on exactly one shard, repeats always
//      hit the shard that computed them, and the shard map is stable
//      across runs and machines. Session traffic routes by the same key
//      — the constraint fingerprint is deliberately NOT hashed — so
//      every constrained variant of one question lands on one shard
//      (session affinity: a Refine always finds the shard whose cache
//      and plans know the question);
//   2. batched admission — SearchAll splits a batch into per-shard
//      sub-batches, runs them concurrently on a persistent router-side
//      dispatch pool, and re-merges the per-query Results into input
//      order. Each shard still applies its own in-batch dedup and cache,
//      so the ranked output is byte-identical to a single engine at any
//      shard count × thread count;
//   3. aggregated observability — metrics_snapshot() merges every
//      shard's sink plus the router's own samples
//      (router.shard_batch_size, router.shard_queries, router.batches)
//      into one fleet view; cache_stats() sums the per-shard books;
//   4. invalidation fan-out — ClearCache() and InvalidateWhere(pred)
//      forward to every shard, so base-data update notifications keep
//      working when the cache is spread over N replicas.
//
// Thread-safety matches SodaEngine: all entry points are const and safe
// to call from many caller threads at once.

#ifndef SODA_CORE_SHARDED_ENGINE_H_
#define SODA_CORE_SHARDED_ENGINE_H_

#include <cstddef>
#include <functional>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/lru_cache.h"
#include "common/metrics.h"
#include "common/thread_pool.h"
#include "core/engine.h"
#include "core/service.h"

namespace soda {

/// The router's shard choice for a *normalized* query key (callers hash
/// NormalizedQueryKey(query), not the raw string): 64-bit FNV-1a folded
/// to 32 bits (high xor low) before the modulo, so short keys still
/// spread over the full shard range. Exposed for tests and for external
/// placement logic (e.g. cache warmers) that must agree with the router.
size_t ShardOfKey(const std::string& normalized_key, size_t num_shards);

class ShardedSodaEngine : public SodaService {
 public:
  /// Builds config.num_shards SodaEngine replicas over the same catalog
  /// and graph (each replica copies the pattern library and builds its
  /// own indexes). Construction failures of any replica propagate.
  /// num_shards 0 and 1 both build a single shard. With num_threads=0
  /// ("use the hardware"), each shard gets hardware_concurrency /
  /// num_shards workers (min 1), so the fleet's pool roughly matches the
  /// machine instead of oversubscribing it num_shards-fold.
  static Result<std::unique_ptr<ShardedSodaEngine>> Create(
      const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
      SodaConfig config);

  /// Wraps already-constructed replicas. `shards` must be non-empty and
  /// hold no nulls (asserted): every routing path indexes into it.
  explicit ShardedSodaEngine(std::vector<std::unique_ptr<SodaEngine>> shards);

  using SodaService::Search;
  using SodaService::SearchAll;

  /// Routes the query to its shard and delegates. Same contract as
  /// SodaEngine::Search; repeats of one query always land on the same
  /// shard (constraints excluded from the routing key), so its cache
  /// behaves exactly like a single engine's.
  Result<SearchOutput> Search(
      const std::string& query,
      const SessionConstraints& constraints) const override;

  /// Session search with affinity: the plan's question routes by its
  /// normalized text, so every Refine resumes on the shard that captured
  /// the plan. Books router.session_queries.
  Result<SearchOutput> SearchSession(
      const std::string& query, const SessionConstraints& constraints,
      std::shared_ptr<TranslationPlan>* plan) const override;

  /// Batched admission point: splits the batch by shard, runs the
  /// occupied shards' SearchAll concurrently, and merges the per-query
  /// outputs back into input order. Byte-identical ranked results to a
  /// single engine; in-batch dedup still applies (identical normalized
  /// queries route identically, so they meet in one sub-batch).
  std::vector<Result<SearchOutput>> SearchAll(
      std::span<const std::string> queries) const override;

  /// Async admission: per-shard SearchAllAsync with the callback's
  /// query_index remapped to the caller's batch position. All shards'
  /// translations complete before this returns (so `barrier` has its
  /// full expectation registered); snippets stream afterwards from every
  /// shard's pool concurrently.
  std::vector<Result<SearchOutput>> SearchAllAsync(
      std::span<const std::string> queries, SnippetCallback on_snippet,
      SnippetBarrier* barrier) const override;

  /// Single-query async, routed to its shard.
  Result<SearchOutput> SearchAsync(const std::string& query,
                                   SnippetCallback on_snippet,
                                   SnippetBarrier* barrier) const override;

  /// Sum of every shard's cache books (hits/misses/dedup/invalidations;
  /// capacity and size sum too — they describe the fleet).
  CacheStats cache_stats() const override;

  /// Fans out to every shard.
  void ClearCache() const override;

  /// Keyed invalidation fan-out: forwards `pred` (over normalized query
  /// keys) to every shard and returns the total number of evicted
  /// entries. Each key lives on exactly one shard, so the total equals
  /// what a single engine would have evicted.
  size_t InvalidateWhere(
      const std::function<bool(const std::string&)>& pred) const override;

  /// Incremental base-data maintenance fan-out: every replica owns its
  /// own inverted index over the shared database, so one storage
  /// ChangeEvent must reach all of them. Same contract as
  /// SodaEngine::ApplyBaseDataDelta (call under the change log's
  /// exclusive data lock, i.e. from a ChangeListener). Returns the sum
  /// of new posting entries across shards.
  size_t ApplyBaseDataDelta(const ChangeEvent& event) override;

  /// Registers the freshness manager on every shard (each replica
  /// reports its own cache inserts; the manager dedups by key). nullptr
  /// detaches. Normally called by FreshnessManager::Track.
  void set_freshness(FreshnessManager* freshness) override;

  /// Installs `sink` on every shard — the exporter hook for fleet
  /// deployments (MetricsSink implementations are thread-safe, so one
  /// instance may serve all shards). Same caveat as
  /// SodaEngine::set_metrics_sink: install before serving traffic.
  /// nullptr restores each shard's built-in sink. The router's own
  /// router.* samples stay in its internal sink either way and keep
  /// appearing in metrics_snapshot().
  void set_metrics_sink(std::shared_ptr<MetricsSink> sink) override;

  /// Fleet view: every shard's snapshot merged (counters add, histograms
  /// merge on the shared bucket grid) plus the router's own
  /// router.shard_batch_size / router.shard_queries / router.batches.
  /// Shards whose built-in sink was replaced via set_metrics_sink stop
  /// contributing new samples here — snapshot the custom sink instead.
  MetricsSnapshot metrics_snapshot() const override;

  size_t num_shards() const { return shards_.size(); }

  /// Per-shard worker width (all shards share one config).
  size_t num_threads() const override { return shards_.front()->num_threads(); }

  /// Fleet backlog: the router's own dispatch-pool queue plus every
  /// shard pool's queue (see SodaService::queue_depth). This is the
  /// depth signal the HTTP front end's admission watermark compares
  /// against — a batch wave that outruns the shards shows up here
  /// before latency does.
  size_t queue_depth() const override;

  /// Direct access to one replica, for tests and per-shard inspection.
  const SodaEngine& shard(size_t i) const { return *shards_[i]; }

 private:
  /// Shared split/route/merge core of SearchAll and SearchAllAsync.
  std::vector<Result<SearchOutput>> DispatchBatch(
      std::span<const std::string> queries, bool async,
      SnippetCallback on_snippet, SnippetBarrier* barrier) const;

  std::vector<std::unique_ptr<SodaEngine>> shards_;
  std::shared_ptr<InMemoryMetricsSink> router_sink_;
  // Dispatches per-shard sub-batches (the caller thread participates in
  // ParallelFor, so a single-shard router's pool stays inline and
  // workerless). Persistent: no per-batch thread create/join on the
  // serving hot path, and no std::terminate if thread creation fails
  // mid-batch. Declared last so in-flight dispatches drain before the
  // members they touch are destroyed.
  mutable ThreadPool dispatch_pool_;
};

}  // namespace soda

#endif  // SODA_CORE_SHARDED_ENGINE_H_
