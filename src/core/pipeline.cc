#include "core/pipeline.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "common/strings.h"
#include "core/entry_point.h"
#include "text/tokenizer.h"

namespace soda {

namespace {

// One "stage.<name>.ms" latency sample. The small concatenation is the
// only allocation on the metrics path; stage names are short enough for
// SSO-adjacent cheapness and the sample itself is mutex-bounded anyway.
void ObserveStage(MetricsSink* metrics, std::string_view stage_name,
                  double ms) {
  if (metrics == nullptr) return;
  std::string name = "stage.";
  name += stage_name;
  name += ".ms";
  metrics->Observe(name, ms);
}

}  // namespace

std::string EntryPointKey(const EntryPoint& ep) {
  if (ep.kind == EntryPoint::Kind::kBaseData) {
    return FoldForMatch(ep.table) + "." + FoldForMatch(ep.column) + "=" +
           ep.value;
  }
  return ep.label + "@" + std::string(MetadataLayerName(ep.layer)) + "#" +
         std::to_string(ep.node);
}

std::string Explanation::Render() const {
  std::string out;
  for (const ExplanationTerm& term : terms) {
    if (!out.empty()) out += "; ";
    out += term.phrase + " @ " +
           std::string(MetadataLayerName(term.entry.layer));
  }
  return out;
}

// ---------------------------------------------------------------------------
// SessionConstraints
// ---------------------------------------------------------------------------

namespace {

void InsertSortedUnique(std::vector<std::string>* list, std::string value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it != list->end() && *it == value) return;
  list->insert(it, std::move(value));
}

void EraseValue(std::vector<std::string>* list, const std::string& value) {
  auto it = std::lower_bound(list->begin(), list->end(), value);
  if (it != list->end() && *it == value) list->erase(it);
}

}  // namespace

void SessionConstraints::PinTable(const std::string& table) {
  InsertSortedUnique(&pinned_tables, FoldForMatch(table));
}

void SessionConstraints::UnpinTable(const std::string& table) {
  EraseValue(&pinned_tables, FoldForMatch(table));
}

void SessionConstraints::BanTable(const std::string& table) {
  InsertSortedUnique(&banned_tables, FoldForMatch(table));
}

void SessionConstraints::UnbanTable(const std::string& table) {
  EraseValue(&banned_tables, FoldForMatch(table));
}

void SessionConstraints::Bind(const std::string& term,
                              const std::string& entry_key) {
  std::string folded = FoldForMatch(term);
  auto it = std::lower_bound(bindings.begin(), bindings.end(), folded,
                             [](const TermBinding& binding,
                                const std::string& t) {
                               return binding.term < t;
                             });
  if (it != bindings.end() && it->term == folded) {
    it->entry_key = entry_key;  // rebinding a term replaces its target
    return;
  }
  bindings.insert(it, TermBinding{std::move(folded), entry_key});
}

void SessionConstraints::Unbind(const std::string& term) {
  std::string folded = FoldForMatch(term);
  auto it = std::lower_bound(bindings.begin(), bindings.end(), folded,
                             [](const TermBinding& binding,
                                const std::string& t) {
                               return binding.term < t;
                             });
  if (it != bindings.end() && it->term == folded) bindings.erase(it);
}

std::string SessionConstraints::BindingsFingerprint() const {
  std::string fp;
  for (const TermBinding& binding : bindings) {
    if (!fp.empty()) fp += ",";
    fp += binding.term;
    fp += "=";
    fp += binding.entry_key;
  }
  return fp;
}

std::string SessionConstraints::Fingerprint() const {
  if (empty()) return "";
  return "p:" + Join(pinned_tables, ",") + "|b:" + Join(banned_tables, ",") +
         "|t:" + BindingsFingerprint();
}

void StepTimings::Add(std::string_view stage_name, double ms) {
  if (stage_name == "lookup") {
    lookup_ms += ms;
  } else if (stage_name == "rank") {
    rank_ms += ms;
  } else if (stage_name == "tables") {
    tables_ms += ms;
  } else if (stage_name == "filters") {
    filters_ms += ms;
  } else if (stage_name == "sql") {
    sql_ms += ms;
  } else if (stage_name == "execute") {
    execute_ms += ms;
  }
}

std::string CanonicalKey(const SelectStatement& stmt) {
  std::vector<std::string> tables;
  for (const auto& t : stmt.from) tables.push_back(FoldForMatch(t.table));
  std::sort(tables.begin(), tables.end());
  std::vector<std::string> conjuncts;
  for (const auto& p : stmt.where) {
    std::string a = p.lhs.ToString(), b = p.rhs.ToString();
    if (p.op == CompareOp::kEq && b < a) std::swap(a, b);
    conjuncts.push_back(a + CompareOpSymbol(p.op) + b);
  }
  std::sort(conjuncts.begin(), conjuncts.end());
  std::vector<std::string> items;
  for (const auto& item : stmt.items) items.push_back(item.ToString());
  std::sort(items.begin(), items.end());
  std::string key = Join(tables, ",") + "|" + Join(conjuncts, "&") + "|" +
                    Join(items, ",");
  for (const auto& g : stmt.group_by) key += "#" + g.ToString();
  if (stmt.limit.has_value()) key += "^" + std::to_string(*stmt.limit);
  return key;
}

// ---------------------------------------------------------------------------
// PipelineStage defaults
// ---------------------------------------------------------------------------

Status PipelineStage::Run(QueryContext* ctx) const {
  if (!per_interpretation()) {
    return Status::Internal("query-level stage must override Run");
  }
  for (InterpretationState& state : ctx->states) {
    if (state.dropped) continue;
    SODA_RETURN_NOT_OK(RunOne(*ctx, &state));
  }
  return Status::OK();
}

Status PipelineStage::RunOne(const QueryContext&, InterpretationState*) const {
  return Status::Unsupported("stage has no per-interpretation entry point");
}

// ---------------------------------------------------------------------------
// LookupStage
// ---------------------------------------------------------------------------

namespace {

// The folded token vocabulary Step 1 probed: everything segmentation and
// classification compared against the base-data index. An appended value
// whose tokens intersect this set can change the query's lookup (a new
// entry point, a previously ignored word that now matches, a shifted
// candidate count), so the freshness layer keys invalidation on it.
std::vector<std::string> CollectFreshnessTerms(const QueryContext& ctx) {
  std::vector<std::string> terms;
  auto add_tokens = [&terms](std::string_view text) {
    for (std::string& token : Tokenize(text)) {
      terms.push_back(std::move(token));
    }
  };
  for (const LookupTerm& term : ctx.lookup.terms) {
    add_tokens(term.phrase);  // already folded; Tokenize just splits
  }
  for (const std::string& word : ctx.lookup.ignored_words) {
    add_tokens(word);
  }
  for (const OperatorBinding& op : ctx.lookup.operators) {
    // String comparison operands ("family name = Meier") are consumed as
    // literals, so they appear in neither terms nor ignored words.
    if (op.literal.type() == ValueType::kString && !op.literal.is_null()) {
      add_tokens(op.literal.AsString());
    }
  }
  for (const InputElement& element : ctx.parsed.elements) {
    if (element.kind == InputElement::Kind::kAggregation) {
      add_tokens(element.agg_argument);
    }
    if (element.kind == InputElement::Kind::kGroupBy) {
      for (const std::string& phrase : element.group_by_phrases) {
        add_tokens(phrase);
      }
    }
  }
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());
  return terms;
}

}  // namespace

Status LookupStage::Run(QueryContext* ctx) const {
  SODA_ASSIGN_OR_RETURN(ctx->parsed, ParseInputQuery(ctx->raw_query));
  ctx->probe_memo = std::make_unique<ProbeMemo>(step_->index());
  SODA_ASSIGN_OR_RETURN(ctx->lookup,
                        step_->Run(ctx->parsed, ctx->probe_memo.get()));
  if (ctx->metrics != nullptr) {
    ctx->metrics->IncrementCounter("index.probe_memo_hits",
                                   ctx->probe_memo->hits());
    ctx->metrics->IncrementCounter("index.probe_memo_misses",
                                   ctx->probe_memo->misses());
  }
  if (ctx->collect_freshness_terms) {
    ctx->freshness_terms = CollectFreshnessTerms(*ctx);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// RankStage
// ---------------------------------------------------------------------------

namespace {

// Materializes the chosen entry points of one interpretation: terms with
// no candidates do not contribute an entry point, and operator bindings
// are remapped to the compacted entry indexes.
void MaterializeInterpretation(const LookupOutput& lookup,
                               InterpretationState* state) {
  std::vector<size_t> remap(lookup.terms.size(), SIZE_MAX);
  for (size_t t = 0; t < lookup.terms.size(); ++t) {
    const LookupTerm& term = lookup.terms[t];
    if (term.candidates.empty()) continue;
    remap[t] = state->entries.size();
    const EntryPoint& ep = term.candidates[state->interpretation.choice[t]];
    state->entries.push_back(ep);
    state->explanation.terms.push_back(
        ExplanationTerm{term.phrase, ep, EntryPointKey(ep)});
  }
  for (OperatorBinding binding : lookup.operators) {
    if (binding.term_index < remap.size() &&
        remap[binding.term_index] != SIZE_MAX) {
      binding.term_index = remap[binding.term_index];
      state->operators.push_back(binding);
    }
  }
}

// Applies term bindings to the enumerated product: an interpretation
// survives only if its choice for every bound term is the candidate
// carrying the bound entry-point key. Bindings naming an absent term (or
// a term that matched no candidates) are inert — they cannot constrain
// what was never enumerated.
void FilterInterpretationsByBindings(LookupOutput* lookup,
                                     const SessionConstraints& constraints) {
  for (const SessionConstraints::TermBinding& binding : constraints.bindings) {
    size_t term_index = SIZE_MAX;
    for (size_t t = 0; t < lookup->terms.size(); ++t) {
      if (EqualsFolded(lookup->terms[t].phrase, binding.term)) {
        term_index = t;
        break;
      }
    }
    if (term_index == SIZE_MAX) continue;
    const LookupTerm& term = lookup->terms[term_index];
    if (term.candidates.empty()) continue;
    std::vector<bool> allowed(term.candidates.size());
    for (size_t c = 0; c < term.candidates.size(); ++c) {
      allowed[c] = EntryPointKey(term.candidates[c]) == binding.entry_key;
    }
    auto rejected = [&](const Interpretation& interpretation) {
      return !allowed[interpretation.choice[term_index]];
    };
    lookup->interpretations.erase(
        std::remove_if(lookup->interpretations.begin(),
                       lookup->interpretations.end(), rejected),
        lookup->interpretations.end());
  }
}

}  // namespace

Status RankStage::Run(QueryContext* ctx) const {
  std::vector<Interpretation> ranked;
  if (ctx->constraints != nullptr && !ctx->constraints->bindings.empty()) {
    // Bindings narrow the product BEFORE the top-N cut, so binding a term
    // to a low-ranked entry point surfaces interpretations the
    // unconstrained ranking would have dropped. Only the interpretation
    // list is filtered — terms and candidate lists stay untouched, so the
    // surviving choices keep indexing the original candidates.
    LookupOutput constrained = ctx->lookup;
    FilterInterpretationsByBindings(&constrained, *ctx->constraints);
    ranked = RankAndTopN(constrained, *ctx->config);
  } else {
    ranked = RankAndTopN(ctx->lookup, *ctx->config);
  }
  ctx->states.clear();
  ctx->states.reserve(ranked.size());
  for (Interpretation& interpretation : ranked) {
    InterpretationState state;
    state.interpretation = std::move(interpretation);
    MaterializeInterpretation(ctx->lookup, &state);
    if (state.entries.empty() && !ctx->parsed.HasAggregation()) {
      state.dropped = true;
    }
    ctx->states.push_back(std::move(state));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// TablesStage
// ---------------------------------------------------------------------------

Status TablesStage::RunOne(const QueryContext& ctx,
                           InterpretationState* state) const {
  Result<TablesOutput> tables = step_->Run(state->entries, ctx.metrics);
  if (!tables.ok()) {
    state->dropped = true;
    return Status::OK();
  }
  state->tables = std::move(*tables);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// FiltersStage
// ---------------------------------------------------------------------------

Status FiltersStage::RunOne(const QueryContext&,
                            InterpretationState* state) const {
  Result<std::vector<GeneratedFilter>> filters =
      step_->Run(state->entries, state->operators, *state->tables);
  if (!filters.ok()) {
    state->dropped = true;
    return Status::OK();
  }
  state->filters = std::move(*filters);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SqlStage
// ---------------------------------------------------------------------------

Status SqlStage::RunOne(const QueryContext& ctx,
                        InterpretationState* state) const {
  // Step 5 precondition: drop mutually exclusive inheritance siblings
  // that no filter or column constrains (see TablesStep). A pinned table
  // counts as constrained — the user asked for it by name.
  std::vector<PhysicalColumnRef> constrained;
  for (const GeneratedFilter& filter : state->filters) {
    constrained.push_back(filter.column);
  }
  for (const auto& column : state->tables->entry_columns) {
    if (column.has_value()) constrained.push_back(*column);
  }
  for (const auto& aggregation : state->tables->aggregations) {
    constrained.push_back(aggregation.column);
  }
  const SessionConstraints* session = ctx.constraints;
  tables_step_->PruneUnconstrainedSiblings(
      &*state->tables, constrained,
      session != nullptr ? &session->pinned_tables : nullptr);

  Result<SelectStatement> stmt = generator_->Generate(
      ctx.parsed, *state->tables, state->filters, ctx.metrics);
  if (!stmt.ok()) {
    state->dropped = true;
    return Status::OK();
  }
  // Pin/ban enforcement over the statement actually emitted: banned
  // tables retire the interpretation, pinned tables must all be read.
  if (session != nullptr &&
      (!session->pinned_tables.empty() || !session->banned_tables.empty())) {
    auto reads_table = [&stmt](const std::string& folded) {
      for (const TableRef& ref : stmt->from) {
        if (FoldForMatch(ref.table) == folded) return true;
      }
      return false;
    };
    for (const std::string& banned : session->banned_tables) {
      if (reads_table(banned)) {
        state->dropped = true;
        return Status::OK();
      }
    }
    for (const std::string& pinned : session->pinned_tables) {
      if (!reads_table(pinned)) {
        state->dropped = true;
        return Status::OK();
      }
    }
  }
  state->fully_connected = state->tables->fully_connected;
  if (ctx.config->drop_disconnected && !state->fully_connected) {
    state->dropped = true;
    return Status::OK();
  }
  // Complete the provenance record with what was actually emitted (the
  // FROM list and joins reflect the pruning above).
  state->explanation.tables.clear();
  for (const TableRef& ref : stmt->from) {
    state->explanation.tables.push_back(ref.table);
  }
  state->explanation.joins = state->tables->joins;
  state->explanation.filters = state->filters;
  state->statement = std::move(*stmt);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

void RunInterpretationStages(const std::vector<const PipelineStage*>& stages,
                             const QueryContext& ctx,
                             InterpretationState* state) {
  for (const PipelineStage* stage : stages) {
    if (!stage->per_interpretation()) continue;
    if (state->dropped) return;
    auto t0 = std::chrono::steady_clock::now();
    // Stage spans record into the shared trace under its own lock; the
    // context rode into this worker by value, which is the explicit
    // cross-thread capture the trace layer is built around.
    Span span(ctx.trace, std::string("stage.") + std::string(stage->name()));
    Status st = stage->RunOne(ctx, state);
    // Span-local status only: a retired interpretation is a normal
    // outcome, not a trace-level error.
    if (!st.ok()) span.SetStatus(st.message());
    span.End();
    double ms = MsSince(t0);
    ObserveStage(ctx.metrics, stage->name(), ms);
    if (stage->name() == "tables") {
      state->tables_ms += ms;
    } else if (stage->name() == "filters") {
      state->filters_ms += ms;
    } else if (stage->name() == "sql") {
      state->sql_ms += ms;
    }
    if (!st.ok()) {
      // Per-interpretation failures retire the interpretation instead of
      // failing the query — other interpretations are still good answers.
      state->dropped = true;
      return;
    }
  }
}

Status RunQueryStages(const std::vector<const PipelineStage*>& stages,
                      QueryContext* ctx) {
  for (const PipelineStage* stage : stages) {
    if (stage->per_interpretation()) continue;
    auto t0 = std::chrono::steady_clock::now();
    Span span(ctx->trace, std::string("stage.") + std::string(stage->name()));
    Status st = stage->Run(ctx);
    if (!st.ok()) {
      // A failed query-level stage fails the whole query — that is a
      // trace-level error, so the trace survives sampling.
      span.SetError(st.message());
      return st;
    }
    span.End();
    double ms = MsSince(t0);
    ctx->timings.Add(stage->name(), ms);
    ObserveStage(ctx->metrics, stage->name(), ms);
  }
  return Status::OK();
}

Status RunPipeline(const std::vector<const PipelineStage*>& stages,
                   QueryContext* ctx) {
  SODA_RETURN_NOT_OK(RunQueryStages(stages, ctx));
  for (InterpretationState& state : ctx->states) {
    RunInterpretationStages(stages, *ctx, &state);
  }
  return Status::OK();
}

SearchOutput FinalizeOutput(QueryContext&& ctx) {
  SearchOutput output;
  output.parsed = std::move(ctx.parsed);
  output.complexity = ctx.lookup.complexity;
  output.ignored_words = std::move(ctx.lookup.ignored_words);
  output.timings = ctx.timings;
  output.freshness_terms = std::move(ctx.freshness_terms);

  std::set<std::string> seen_sql;
  for (InterpretationState& state : ctx.states) {
    output.timings.tables_ms += state.tables_ms;
    output.timings.filters_ms += state.filters_ms;
    output.timings.sql_ms += state.sql_ms;
    if (state.dropped || !state.statement.has_value()) continue;
    if (!seen_sql.insert(CanonicalKey(*state.statement)).second) continue;

    SodaResult result;
    result.statement = std::move(*state.statement);
    result.sql = result.statement.ToSql();
    result.score = state.interpretation.score;
    result.explanation = state.explanation.Render();
    result.provenance = std::move(state.explanation);
    result.fully_connected = state.fully_connected;
    output.results.push_back(std::move(result));
  }
  return output;
}

}  // namespace soda
