#include "core/tables_step.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <set>
#include <utility>

#include "common/metrics.h"
#include "common/strings.h"
#include "core/closure.h"
#include "graph/vocab.h"
#include "schema/warehouse_model.h"

namespace soda {

namespace {

// Predicates the Step-3 traversal follows. These are the "downward" edges
// from business vocabulary to physical schema: classification, layer
// implementation, attribute realization, containment, and inheritance.
// Free exploration edges (related_via / rel_from / rel_to) are
// deliberately excluded — the paper's tables step maps entry points to
// *their* tables; connections between different entry points come from
// join discovery, not from wandering across relationships.
// Note: "child_of" (child table -> inheritance node) is deliberately NOT
// followed: an entry point on an inheritance child must collect its parent
// (the Inheritance-Child pattern does that at the child node) but not its
// siblings. "parent_of" IS followed so that an entry on the parent expands
// to all mutually exclusive children (paper Figure 6: the Customers entry
// point yields parties, individuals and organizations).
// "subconcept_of" (up the ontology) is also excluded: specializations must
// not inherit the full scope of their generalization ("private customers"
// would otherwise expand through "customers" to organizations too). The
// downward direction is covered by the classifies edge the ontology
// compiler adds from parent to child concept.
const char* kTraversalPredicates[] = {
    vocab::kClassifies,       vocab::kImplementedBy,
    vocab::kRealizedBy,       vocab::kAttribute,
    vocab::kColumn,           vocab::kSynonymOf,
    vocab::kFilterColumn,     vocab::kAggColumn,
    "parent_of",              vocab::kInheritanceChild,
    vocab::kInheritanceParent,
};

void PushUnique(std::vector<std::string>* vec, const std::string& value) {
  for (const auto& existing : *vec) {
    if (EqualsFolded(existing, value)) return;
  }
  vec->push_back(value);
}

void PushUniqueJoin(std::vector<JoinEdge>* joins, const JoinEdge& edge) {
  for (const auto& existing : *joins) {
    if ((existing.from == edge.from && existing.to == edge.to) ||
        (existing.from == edge.to && existing.to == edge.from)) {
      return;
    }
  }
  joins->push_back(edge);
}

}  // namespace

void TablesStep::Traverse(NodeId start, TablesOutput* out,
                          std::vector<std::string>* tables) const {
  const MetadataGraph& graph = *matcher_->graph();

  std::set<NodeId> visited;
  std::deque<std::pair<NodeId, size_t>> queue;  // (node, depth)
  queue.emplace_back(start, 0);
  visited.insert(start);

  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();

    // Test the Table pattern: collect the table name.
    if (matcher_->Matches(patterns::kTable, node)) {
      auto name = TableNameOf(graph, node);
      if (name.has_value()) PushUnique(tables, *name);

      // Test the Inheritance-Child pattern at the table: collect the
      // parent table ("we need to collect the table name of the
      // inheritance parent because this table is needed to produce
      // correct SQL statements").
      auto inh = matcher_->MatchAt(patterns::kInheritanceChild, node);
      if (inh.ok()) {
        for (const MatchBinding& m : *inh) {
          auto parent = TableNameOf(graph, m.node("p"));
          if (parent.has_value()) PushUnique(tables, *parent);
        }
      }
    }

    // Test the Column pattern: collect the owning table.
    if (matcher_->Matches(patterns::kColumn, node)) {
      auto column = ColumnRefOf(graph, node);
      if (column.has_value()) PushUnique(tables, column->table);
    }

    // Test the Metadata-Filter pattern: harvest the stored predicate.
    {
      auto filter_matches = matcher_->MatchAt(patterns::kMetadataFilter, node);
      if (filter_matches.ok()) {
        for (const MatchBinding& m : *filter_matches) {
          auto column = ColumnRefOf(graph, m.node("c"));
          if (!column.has_value()) continue;
          DiscoveredFilter filter;
          filter.column = *column;
          filter.op = m.text("op");
          filter.value = m.text("v");
          out->filters.push_back(std::move(filter));
          PushUnique(tables, column->table);
        }
      }
    }

    // Metadata-defined aggregations ("trading volume").
    if (graph.HasType(node, vocab::kMetadataAggregation)) {
      NodeId column_node = graph.FirstTarget(node, vocab::kAggColumn);
      auto column = ColumnRefOf(graph, column_node);
      auto func_text = graph.FirstText(node, vocab::kAggFunc);
      if (column.has_value() && func_text.has_value()) {
        DiscoveredAggregation aggregation;
        aggregation.column = *column;
        if (*func_text == "sum") aggregation.func = AggFunc::kSum;
        if (*func_text == "count") aggregation.func = AggFunc::kCount;
        if (*func_text == "avg") aggregation.func = AggFunc::kAvg;
        if (*func_text == "min") aggregation.func = AggFunc::kMin;
        if (*func_text == "max") aggregation.func = AggFunc::kMax;
        out->aggregations.push_back(std::move(aggregation));
        PushUnique(tables, column->table);
      }
    }

    if (depth >= config_->max_traversal_depth) continue;
    for (const char* predicate : kTraversalPredicates) {
      for (NodeId next : graph.Targets(node, predicate)) {
        if (visited.insert(next).second) {
          queue.emplace_back(next, depth + 1);
        }
      }
    }
  }
}

void TablesStep::PruneUnconstrainedSiblings(
    TablesOutput* tables,
    const std::vector<PhysicalColumnRef>& constrained_columns,
    const std::vector<std::string>* protected_tables) const {
  const MetadataGraph& graph = *matcher_->graph();

  auto in_tables = [&](const std::string& name) {
    for (const auto& t : tables->tables) {
      if (EqualsFolded(t, name)) return true;
    }
    return false;
  };

  // Candidate children: tables that match the Inheritance-Child pattern
  // and have a sibling child among the tables.
  std::vector<std::string> droppable_candidates;
  for (const std::string& table : tables->tables) {
    NodeId node = graph.FindNode(TableUri(table));
    if (node == kInvalidNode) continue;
    auto matches = matcher_->MatchAt(patterns::kInheritanceChild, node);
    if (!matches.ok() || matches->empty()) continue;
    const MatchBinding& m = matches->front();
    bool sibling_present = false;
    for (NodeId sibling :
         graph.Targets(m.node("y"), vocab::kInheritanceChild)) {
      if (sibling == node) continue;
      auto sibling_name = TableNameOf(graph, sibling);
      if (sibling_name.has_value() && in_tables(*sibling_name)) {
        sibling_present = true;
        break;
      }
    }
    if (sibling_present) droppable_candidates.push_back(table);
  }

  for (const std::string& child : droppable_candidates) {
    bool constrained = false;
    for (const auto& column : constrained_columns) {
      if (EqualsFolded(column.table, child)) {
        constrained = true;
        break;
      }
    }
    if (!constrained && protected_tables != nullptr) {
      for (const std::string& protected_table : *protected_tables) {
        if (EqualsFolded(protected_table, child)) {
          constrained = true;
          break;
        }
      }
    }
    if (constrained) continue;
    // Droppable only when every join touching the child leads to one and
    // the same neighbor (a pure leaf of the join graph).
    std::string neighbor;
    bool droppable = true;
    std::vector<size_t> touching;
    for (size_t j = 0; j < tables->joins.size(); ++j) {
      const JoinEdge& edge = tables->joins[j];
      bool from_child = EqualsFolded(edge.from.table, child);
      bool to_child = EqualsFolded(edge.to.table, child);
      if (!from_child && !to_child) continue;
      const std::string& other = from_child ? edge.to.table : edge.from.table;
      if (neighbor.empty()) {
        neighbor = other;
      } else if (!EqualsFolded(neighbor, other)) {
        droppable = false;
        break;
      }
      touching.push_back(j);
    }
    if (!droppable || touching.empty()) continue;
    for (auto it = touching.rbegin(); it != touching.rend(); ++it) {
      tables->joins.erase(tables->joins.begin() + static_cast<long>(*it));
    }
    for (auto it = tables->tables.begin(); it != tables->tables.end(); ++it) {
      if (EqualsFolded(*it, child)) {
        tables->tables.erase(it);
        break;
      }
    }
  }
}

const TraverseClosure* TablesStep::ClosureFor(NodeId start, bool* hit) const {
  *hit = false;
  if (closure_ == nullptr || start < 0 ||
      static_cast<size_t>(start) >= closure_->num_nodes()) {
    return nullptr;
  }
  if (const TraverseClosure* cached = closure_->Find(start)) {
    *hit = true;
    return cached;
  }
  auto fresh = std::make_unique<TraverseClosure>();
  TablesOutput scratch;
  Traverse(start, &scratch, &fresh->tables);
  fresh->filters = std::move(scratch.filters);
  fresh->aggregations = std::move(scratch.aggregations);
  return closure_->Publish(start, std::move(fresh));
}

std::vector<std::string> TablesStep::TablesFromNode(NodeId node) const {
  bool hit = false;
  if (const TraverseClosure* cached = ClosureFor(node, &hit)) {
    return cached->tables;
  }
  TablesOutput scratch;
  std::vector<std::string> tables;
  Traverse(node, &scratch, &tables);
  return tables;
}

Result<TablesOutput> TablesStep::Run(const std::vector<EntryPoint>& entries,
                                     MetricsSink* metrics) const {
  const MetadataGraph& graph = *matcher_->graph();
  TablesOutput out;
  uint64_t traverse_hits = 0;
  uint64_t traverse_misses = 0;
  uint64_t path_lookups = 0;

  // ---- Part 1: tables per entry point -----------------------------------
  for (const EntryPoint& entry : entries) {
    std::vector<std::string> tables;
    std::optional<PhysicalColumnRef> column;
    if (entry.kind == EntryPoint::Kind::kBaseData) {
      tables.push_back(entry.table);
      column = PhysicalColumnRef{entry.table, entry.column};
      // Base-data hits on inheritance children still need the parent; the
      // Inheritance-Child pattern fires on the table node.
      NodeId table_node = graph.FindNode(TableUri(entry.table));
      if (table_node != kInvalidNode) {
        auto inh = matcher_->MatchAt(patterns::kInheritanceChild, table_node);
        if (inh.ok()) {
          for (const MatchBinding& m : *inh) {
            auto parent = TableNameOf(graph, m.node("p"));
            if (parent.has_value()) PushUnique(&tables, *parent);
          }
        }
      }
    } else {
      bool hit = false;
      if (const TraverseClosure* cached = ClosureFor(entry.node, &hit)) {
        // Memoized traversal: splice the compiled closure in exactly
        // where Traverse would have appended.
        tables = cached->tables;
        out.filters.insert(out.filters.end(), cached->filters.begin(),
                           cached->filters.end());
        out.aggregations.insert(out.aggregations.end(),
                                cached->aggregations.begin(),
                                cached->aggregations.end());
        ++(hit ? traverse_hits : traverse_misses);
      } else {
        Traverse(entry.node, &out, &tables);
      }
      column = ResolvePhysicalColumn(graph, entry.node);
    }
    out.entry_columns.push_back(column);
    out.tables_per_entry.push_back(std::move(tables));
  }

  // ---- Part 2: joins on direct paths between entry points ---------------
  for (const auto& tables : out.tables_per_entry) {
    for (const auto& table : tables) PushUnique(&out.tables, table);
  }

  if (config_->direct_path_only) {
    for (size_t i = 0; i < out.tables_per_entry.size(); ++i) {
      for (size_t j = i + 1; j < out.tables_per_entry.size(); ++j) {
        if (out.tables_per_entry[i].empty() ||
            out.tables_per_entry[j].empty()) {
          continue;
        }
        std::vector<JoinEdge> path;
        std::vector<std::string> path_tables;
        ++path_lookups;
        if (join_graph_->DirectPath(out.tables_per_entry[i],
                                    out.tables_per_entry[j], &path,
                                    &path_tables)) {
          for (const JoinEdge& edge : path) PushUniqueJoin(&out.joins, edge);
          for (const auto& table : path_tables) {
            PushUnique(&out.tables, table);
          }
        } else {
          out.fully_connected = false;
        }
      }
    }
  } else {
    // Ablation: keep every join condition attached to a collected table
    // (what Figure 9 warns against — "attached" joins blow up results).
    for (const auto& table : out.tables) {
      for (const JoinEdge& edge : join_graph_->EdgesOf(table)) {
        if (edge.ignored) continue;
        PushUniqueJoin(&out.joins, edge);
        PushUnique(&out.tables, edge.from.table);
        PushUnique(&out.tables, edge.to.table);
      }
    }
  }

  // Within one entry-point group, sibling tables still need connecting
  // (e.g. a table plus its inheritance parent). Use direct paths between
  // every pair of tables inside a group.
  for (const auto& group : out.tables_per_entry) {
    for (size_t a = 0; a < group.size(); ++a) {
      for (size_t b = a + 1; b < group.size(); ++b) {
        std::vector<JoinEdge> path;
        std::vector<std::string> path_tables;
        ++path_lookups;
        if (join_graph_->DirectPath({group[a]}, {group[b]}, &path,
                                    &path_tables)) {
          for (const JoinEdge& edge : path) PushUniqueJoin(&out.joins, edge);
          for (const auto& table : path_tables) {
            PushUnique(&out.tables, table);
          }
        }
      }
    }
  }

  // ---- Part 3: bridge tables between entry points ------------------------
  if (config_->use_bridge_tables) {
    std::vector<std::string> entry_tables;
    for (const auto& group : out.tables_per_entry) {
      for (const auto& table : group) PushUnique(&entry_tables, table);
    }
    auto in_entry = [&](const std::string& table) {
      for (const auto& t : entry_tables) {
        if (EqualsFolded(t, table)) return true;
      }
      return false;
    };
    for (const BridgeInfo& bridge : join_graph_->bridges()) {
      if (bridge.left.ignored || bridge.right.ignored) continue;
      // "If we find a bridge table between two of our entry points, we
      // use it to add additional join conditions." This also fires for
      // bridges between inheritance siblings that are both entry tables —
      // the war story behind the low precision of paper queries Q5.0/Q9.0.
      if (in_entry(bridge.left.to.table) && in_entry(bridge.right.to.table) &&
          !EqualsFolded(bridge.left.to.table, bridge.right.to.table)) {
        PushUnique(&out.tables, bridge.bridge_table);
        PushUniqueJoin(&out.joins, bridge.left);
        PushUniqueJoin(&out.joins, bridge.right);
      }
    }
  }

  if (metrics != nullptr) {
    if (traverse_hits > 0) {
      metrics->IncrementCounter("closure.traverse_hits", traverse_hits);
    }
    if (traverse_misses > 0) {
      metrics->IncrementCounter("closure.traverse_misses", traverse_misses);
    }
    if (path_lookups > 0 && join_graph_->has_path_closure()) {
      metrics->IncrementCounter("closure.path_lookups", path_lookups);
    }
  }
  return out;
}

}  // namespace soda
