#include "core/join_graph.h"

#include <algorithm>
#include <deque>
#include <utility>

#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

const std::vector<JoinEdge> JoinGraph::kEmpty;

void JoinGraph::AddEdge(JoinEdge edge) {
  // Deduplicate (both orientations describe the same condition).
  for (const JoinEdge& existing : edges_) {
    if ((existing.from == edge.from && existing.to == edge.to) ||
        (existing.from == edge.to && existing.to == edge.from)) {
      return;
    }
  }
  EdgeId id = static_cast<EdgeId>(edges_.size());
  TableId from_id = catalog_.Intern(edge.from.table);
  TableId to_id = catalog_.Intern(edge.to.table);
  size_t tables = catalog_.size();
  if (adjacency_.size() < tables) {
    adjacency_.resize(tables);
    edges_of_.resize(tables);
  }
  // Registered on both endpoints (twice on the same list for a self
  // join), in insertion order — the order every path search iterates.
  adjacency_[from_id].push_back(id);
  adjacency_[to_id].push_back(id);
  edges_of_[from_id].push_back(edge);
  edges_of_[to_id].push_back(edge);
  edge_ends_.emplace_back(from_id, to_id);
  edges_.push_back(std::move(edge));
}

Status JoinGraph::Build(const PatternMatcher& matcher,
                        bool precompute_paths) {
  const MetadataGraph& graph = *matcher.graph();

  // Direct foreign_key edges: pattern "foreign_key" binds x (fk column)
  // and y (pk column).
  SODA_ASSIGN_OR_RETURN(
      std::vector<MatchBinding> fk_matches,
      matcher.MatchAll(patterns::kForeignKey, /*max_matches=*/100000));
  for (const MatchBinding& m : fk_matches) {
    auto from = ColumnRefOf(graph, m.node("x"));
    auto to = ColumnRefOf(graph, m.node("y"));
    if (!from.has_value() || !to.has_value()) continue;
    JoinEdge edge{*from, *to, /*ignored=*/false};
    auto annotation = graph.FirstText(m.node("x"), vocab::kAnnotation);
    edge.ignored = annotation.has_value() &&
                   *annotation == vocab::kIgnoreRelationship;
    AddEdge(std::move(edge));
  }

  // Explicit join-relationship nodes: x join node, f fk column, p pk col.
  SODA_ASSIGN_OR_RETURN(
      std::vector<MatchBinding> join_matches,
      matcher.MatchAll(patterns::kJoinRelationship, /*max_matches=*/100000));
  for (const MatchBinding& m : join_matches) {
    auto from = ColumnRefOf(graph, m.node("f"));
    auto to = ColumnRefOf(graph, m.node("p"));
    if (!from.has_value() || !to.has_value()) continue;
    JoinEdge edge{*from, *to, /*ignored=*/false};
    auto annotation = graph.FirstText(m.node("x"), vocab::kAnnotation);
    edge.ignored = annotation.has_value() &&
                   *annotation == vocab::kIgnoreRelationship;
    AddEdge(std::move(edge));
  }

  // Bridge tables, in both foreign-key representations.
  auto harvest_bridges = [&](const char* pattern, const char* c1,
                             const char* p1, const char* c2,
                             const char* p2) -> Status {
    SODA_ASSIGN_OR_RETURN(std::vector<MatchBinding> matches,
                          matcher.MatchAll(pattern, /*max_matches=*/100000));
    for (const MatchBinding& m : matches) {
      auto bridge_name = TableNameOf(graph, m.node("x"));
      auto from1 = ColumnRefOf(graph, m.node(c1));
      auto to1 = ColumnRefOf(graph, m.node(p1));
      auto from2 = ColumnRefOf(graph, m.node(c2));
      auto to2 = ColumnRefOf(graph, m.node(p2));
      if (!bridge_name || !from1 || !to1 || !from2 || !to2) continue;
      // Each unordered {left,right} pair appears twice (c1/c2 swapped);
      // keep one orientation deterministically.
      if (to1->ToString() > to2->ToString()) continue;
      BridgeInfo info;
      info.bridge_table = *bridge_name;
      info.left = JoinEdge{*from1, *to1, false};
      info.right = JoinEdge{*from2, *to2, false};
      bool duplicate = false;
      for (const BridgeInfo& existing : bridges_) {
        if (existing.bridge_table == info.bridge_table &&
            existing.left == info.left && existing.right == info.right) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) bridges_.push_back(std::move(info));
    }
    return Status::OK();
  };
  SODA_RETURN_NOT_OK(harvest_bridges(patterns::kBridgeTable, "c1", "p1",
                                     "c2", "p2"));
  SODA_RETURN_NOT_OK(harvest_bridges(patterns::kBridgeTableJoin, "c1", "p1",
                                     "c2", "p2"));

  if (precompute_paths) BuildPathClosure();
  return Status::OK();
}

const std::vector<JoinEdge>& JoinGraph::EdgesOf(
    const std::string& table) const {
  TableId id = catalog_.Find(table);
  return id == kInvalidTableId ? kEmpty : edges_of_[id];
}

void JoinGraph::BfsFrom(TableId source, std::vector<uint32_t>* dist,
                        std::vector<EdgeId>* parent) const {
  dist->assign(catalog_.size(), kUnreachable);
  parent->assign(catalog_.size(), kInvalidEdgeId);
  (*dist)[source] = 0;
  std::deque<TableId> queue;
  queue.push_back(source);
  while (!queue.empty()) {
    TableId current = queue.front();
    queue.pop_front();
    for (EdgeId edge_id : adjacency_[current]) {
      if (edges_[edge_id].ignored) continue;
      const auto& [from_id, to_id] = edge_ends_[edge_id];
      TableId other = from_id == current ? to_id : from_id;
      if ((*dist)[other] != kUnreachable) continue;
      (*dist)[other] = (*dist)[current] + 1;
      (*parent)[other] = edge_id;
      queue.push_back(other);
    }
  }
}

void JoinGraph::BuildPathClosure() {
  size_t tables = catalog_.size();
  if (tables == 0) return;
  dist_.assign(tables * tables, kUnreachable);
  parent_edge_.assign(tables * tables, kInvalidEdgeId);
  std::vector<uint32_t> dist;
  std::vector<EdgeId> parent;
  for (TableId source = 0; source < tables; ++source) {
    BfsFrom(source, &dist, &parent);
    std::copy(dist.begin(), dist.end(), dist_.begin() + source * tables);
    std::copy(parent.begin(), parent.end(),
              parent_edge_.begin() + source * tables);
  }
}

void JoinGraph::EmitPath(const EdgeId* parent, TableId source, TableId target,
                         std::vector<JoinEdge>* path_edges,
                         std::vector<std::string>* path_tables) const {
  // Walk back to the source, emitting in the backward order the original
  // BFS walk produced (edges are reversed afterwards, tables are not).
  TableId cursor = target;
  while (cursor != source) {
    EdgeId edge_id = parent[cursor];
    const JoinEdge& edge = edges_[edge_id];
    if (path_edges != nullptr) path_edges->push_back(edge);
    if (path_tables != nullptr) {
      path_tables->push_back(edge.from.table);
      path_tables->push_back(edge.to.table);
    }
    const auto& [from_id, to_id] = edge_ends_[edge_id];
    cursor = from_id == cursor ? to_id : from_id;
  }
  if (path_edges != nullptr) {
    std::reverse(path_edges->begin(), path_edges->end());
  }
}

bool JoinGraph::DirectPath(const std::vector<std::string>& from_set,
                           const std::vector<std::string>& to_set,
                           std::vector<JoinEdge>* path_edges,
                           std::vector<std::string>* path_tables) const {
  // Overlapping sets: already connected, nothing to add. Compared on
  // folded names (not ids) so tables the catalog never saw still match.
  std::vector<std::string> target_keys;
  target_keys.reserve(to_set.size());
  for (const auto& t : to_set) target_keys.push_back(FoldForMatch(t));
  for (const auto& t : from_set) {
    std::string key = FoldForMatch(t);
    for (const auto& target : target_keys) {
      if (key == target) {
        if (path_tables != nullptr) path_tables->push_back(t);
        return true;
      }
    }
  }

  const size_t tables = catalog_.size();
  uint32_t best_dist = kUnreachable;
  TableId best_source = kInvalidTableId;
  TableId best_target = kInvalidTableId;

  if (has_path_closure()) {
    // Min-scan over the precomputed distance matrix: strict improvement
    // keeps the first (source, target) pair in set order on ties.
    for (const auto& from : from_set) {
      TableId source = catalog_.Find(from);
      if (source == kInvalidTableId) continue;
      const uint32_t* row = dist_.data() + source * tables;
      for (const auto& to : to_set) {
        TableId target = catalog_.Find(to);
        if (target == kInvalidTableId) continue;
        if (row[target] < best_dist) {
          best_dist = row[target];
          best_source = source;
          best_target = target;
        }
      }
    }
    if (best_dist == kUnreachable) return false;
    EmitPath(parent_edge_.data() + best_source * tables, best_source,
             best_target, path_edges, path_tables);
    return true;
  }

  // Fallback (enable_closures off): the same rule computed per call —
  // one BFS per distinct source, identical tie-breaking, identical path.
  std::vector<TableId> seen_sources;
  std::vector<uint32_t> dist;
  std::vector<EdgeId> parent;
  std::vector<EdgeId> best_parent;
  for (const auto& from : from_set) {
    TableId source = catalog_.Find(from);
    if (source == kInvalidTableId) continue;
    if (std::find(seen_sources.begin(), seen_sources.end(), source) !=
        seen_sources.end()) {
      continue;
    }
    seen_sources.push_back(source);
    BfsFrom(source, &dist, &parent);
    bool improved = false;
    for (const auto& to : to_set) {
      TableId target = catalog_.Find(to);
      if (target == kInvalidTableId) continue;
      if (dist[target] < best_dist) {
        best_dist = dist[target];
        best_source = source;
        best_target = target;
        improved = true;
      }
    }
    if (improved) best_parent = parent;
  }
  if (best_dist == kUnreachable) return false;
  EmitPath(best_parent.data(), best_source, best_target, path_edges,
           path_tables);
  return true;
}

}  // namespace soda
