#include "core/join_graph.h"

#include <algorithm>
#include <deque>
#include <set>

#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

const std::vector<JoinEdge> JoinGraph::kEmpty;

namespace {

// Folded table name for adjacency keys (SQL identifiers compare
// case-insensitively).
std::string Key(const std::string& table) { return FoldForMatch(table); }

}  // namespace

void JoinGraph::AddEdge(JoinEdge edge) {
  // Deduplicate (both orientations describe the same condition).
  for (const JoinEdge& existing : edges_) {
    if ((existing.from == edge.from && existing.to == edge.to) ||
        (existing.from == edge.to && existing.to == edge.from)) {
      return;
    }
  }
  edges_.push_back(edge);
  adjacency_[Key(edge.from.table)].push_back(edge);
  adjacency_[Key(edge.to.table)].push_back(edge);
}

Status JoinGraph::Build(const PatternMatcher& matcher) {
  const MetadataGraph& graph = *matcher.graph();

  // Direct foreign_key edges: pattern "foreign_key" binds x (fk column)
  // and y (pk column).
  SODA_ASSIGN_OR_RETURN(
      std::vector<MatchBinding> fk_matches,
      matcher.MatchAll(patterns::kForeignKey, /*max_matches=*/100000));
  for (const MatchBinding& m : fk_matches) {
    auto from = ColumnRefOf(graph, m.node("x"));
    auto to = ColumnRefOf(graph, m.node("y"));
    if (!from.has_value() || !to.has_value()) continue;
    JoinEdge edge{*from, *to, /*ignored=*/false};
    auto annotation = graph.FirstText(m.node("x"), vocab::kAnnotation);
    edge.ignored = annotation.has_value() &&
                   *annotation == vocab::kIgnoreRelationship;
    AddEdge(std::move(edge));
  }

  // Explicit join-relationship nodes: x join node, f fk column, p pk col.
  SODA_ASSIGN_OR_RETURN(
      std::vector<MatchBinding> join_matches,
      matcher.MatchAll(patterns::kJoinRelationship, /*max_matches=*/100000));
  for (const MatchBinding& m : join_matches) {
    auto from = ColumnRefOf(graph, m.node("f"));
    auto to = ColumnRefOf(graph, m.node("p"));
    if (!from.has_value() || !to.has_value()) continue;
    JoinEdge edge{*from, *to, /*ignored=*/false};
    auto annotation = graph.FirstText(m.node("x"), vocab::kAnnotation);
    edge.ignored = annotation.has_value() &&
                   *annotation == vocab::kIgnoreRelationship;
    AddEdge(std::move(edge));
  }

  // Bridge tables, in both foreign-key representations.
  auto harvest_bridges = [&](const char* pattern, const char* c1,
                             const char* p1, const char* c2,
                             const char* p2) -> Status {
    SODA_ASSIGN_OR_RETURN(std::vector<MatchBinding> matches,
                          matcher.MatchAll(pattern, /*max_matches=*/100000));
    for (const MatchBinding& m : matches) {
      auto bridge_name = TableNameOf(graph, m.node("x"));
      auto from1 = ColumnRefOf(graph, m.node(c1));
      auto to1 = ColumnRefOf(graph, m.node(p1));
      auto from2 = ColumnRefOf(graph, m.node(c2));
      auto to2 = ColumnRefOf(graph, m.node(p2));
      if (!bridge_name || !from1 || !to1 || !from2 || !to2) continue;
      // Each unordered {left,right} pair appears twice (c1/c2 swapped);
      // keep one orientation deterministically.
      if (to1->ToString() > to2->ToString()) continue;
      BridgeInfo info;
      info.bridge_table = *bridge_name;
      info.left = JoinEdge{*from1, *to1, false};
      info.right = JoinEdge{*from2, *to2, false};
      bool duplicate = false;
      for (const BridgeInfo& existing : bridges_) {
        if (existing.bridge_table == info.bridge_table &&
            existing.left == info.left && existing.right == info.right) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) bridges_.push_back(std::move(info));
    }
    return Status::OK();
  };
  SODA_RETURN_NOT_OK(harvest_bridges(patterns::kBridgeTable, "c1", "p1",
                                     "c2", "p2"));
  SODA_RETURN_NOT_OK(harvest_bridges(patterns::kBridgeTableJoin, "c1", "p1",
                                     "c2", "p2"));
  return Status::OK();
}

const std::vector<JoinEdge>& JoinGraph::EdgesOf(
    const std::string& table) const {
  auto it = adjacency_.find(Key(table));
  return it == adjacency_.end() ? kEmpty : it->second;
}

bool JoinGraph::DirectPath(const std::vector<std::string>& from_set,
                           const std::vector<std::string>& to_set,
                           std::vector<JoinEdge>* path_edges,
                           std::vector<std::string>* path_tables) const {
  std::set<std::string> targets;
  for (const auto& t : to_set) targets.insert(Key(t));

  // Multi-source BFS from from_set.
  struct Visit {
    std::string table;      // folded
    std::string display;    // original casing for output
  };
  std::map<std::string, std::pair<std::string, JoinEdge>> parent;  // child->(parent, edge)
  std::set<std::string> visited;
  std::deque<Visit> queue;
  for (const auto& t : from_set) {
    std::string k = Key(t);
    if (visited.insert(k).second) queue.push_back(Visit{k, t});
    if (targets.count(k) > 0) {
      // Overlapping sets: already connected, nothing to add.
      if (path_tables != nullptr) path_tables->push_back(t);
      return true;
    }
  }

  std::string reached;
  while (!queue.empty() && reached.empty()) {
    Visit current = queue.front();
    queue.pop_front();
    auto it = adjacency_.find(current.table);
    if (it == adjacency_.end()) continue;
    for (const JoinEdge& edge : it->second) {
      if (edge.ignored) continue;
      // The neighbor is whichever side is not the current table.
      const PhysicalColumnRef& other =
          Key(edge.from.table) == current.table ? edge.to : edge.from;
      std::string other_key = Key(other.table);
      if (visited.count(other_key) > 0) continue;
      visited.insert(other_key);
      parent[other_key] = {current.table, edge};
      if (targets.count(other_key) > 0) {
        reached = other_key;
        break;
      }
      queue.push_back(Visit{other_key, other.table});
    }
  }
  if (reached.empty()) return false;

  // Walk back to a source.
  std::string cursor = reached;
  while (parent.count(cursor) > 0) {
    const auto& [prev, edge] = parent.at(cursor);
    if (path_edges != nullptr) path_edges->push_back(edge);
    if (path_tables != nullptr) {
      path_tables->push_back(edge.from.table);
      path_tables->push_back(edge.to.table);
    }
    cursor = prev;
  }
  if (path_edges != nullptr) {
    std::reverse(path_edges->begin(), path_edges->end());
  }
  return true;
}

}  // namespace soda
