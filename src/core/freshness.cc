#include "core/freshness.h"

#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/service.h"
#include "text/tokenizer.h"

namespace soda {

FreshnessManager::FreshnessManager(ChangeLog* log,
                                   std::shared_ptr<MetricsSink> sink)
    : log_(log) {
  if (sink != nullptr) {
    sink_ = std::move(sink);
  } else {
    own_sink_ = std::make_shared<InMemoryMetricsSink>();
    sink_ = own_sink_;
  }
  sink_->IncrementCounter("freshness.delta_failures", 0);
  log_->Subscribe(this);
}

FreshnessManager::~FreshnessManager() {
  log_->Unsubscribe(this);
  // Detach every tracked engine: an engine that outlives its manager
  // must not report cache inserts into freed memory.
  std::lock_guard<std::mutex> lock(mu_);
  for (const Target& target : targets_) target.detach();
}

void FreshnessManager::Track(SodaService* service) {
  service->set_freshness(this);
  std::lock_guard<std::mutex> lock(mu_);
  targets_.push_back(Target{
      [service](const ChangeEvent& event) {
        return service->ApplyBaseDataDelta(event);
      },
      [service](const std::function<bool(const std::string&)>& pred) {
        return service->InvalidateWhere(pred);
      },
      [service] { service->set_freshness(nullptr); }});
}

void FreshnessManager::RecordQuery(const std::string& key,
                                   const SearchOutput& output) {
  Deps deps;
  deps.terms = output.freshness_terms;  // already folded + deduplicated
  for (const SodaResult& result : output.results) {
    for (const TableRef& ref : result.statement.from) {
      std::string folded = FoldForMatch(ref.table);
      bool duplicate = false;
      for (const std::string& existing : deps.tables) {
        if (existing == folded) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) deps.tables.push_back(std::move(folded));
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  ForgetLocked(key);  // re-recording replaces the old dependencies
  for (const std::string& term : deps.terms) {
    keys_by_term_[term].insert(key);
  }
  for (const std::string& table : deps.tables) {
    keys_by_table_[table].insert(key);
  }
  deps_by_key_[key] = std::move(deps);
  sink_->IncrementCounter("freshness.keys_tracked", 1);
}

void FreshnessManager::RecordPlan(const std::string& plan_key,
                                  const std::vector<std::string>& terms,
                                  std::function<void()> on_invalidate) {
  Deps deps;
  deps.terms = terms;  // plans carry no table dependency: a resume
                       // regenerates SQL and re-executes snippets anyway
  std::lock_guard<std::mutex> lock(mu_);
  ForgetLocked(plan_key);
  for (const std::string& term : deps.terms) {
    keys_by_term_[term].insert(plan_key);
  }
  deps_by_key_[plan_key] = std::move(deps);
  plan_hooks_[plan_key] = std::move(on_invalidate);
  sink_->IncrementCounter("freshness.plans_tracked", 1);
}

void FreshnessManager::ForgetPlan(const std::string& plan_key) {
  std::lock_guard<std::mutex> lock(mu_);
  ForgetLocked(plan_key);
  plan_hooks_.erase(plan_key);
}

void FreshnessManager::Forget(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  ForgetLocked(key);
}

void FreshnessManager::ForgetEvicted(
    const std::string& key,
    const std::function<bool(const std::string&)>& still_cached) {
  std::lock_guard<std::mutex> lock(mu_);
  // A concurrent serve may have re-inserted (and re-recorded) the key
  // after the eviction this call reports; RecordQuery runs under the
  // same mutex and Put precedes RecordQuery in every inserter, so a
  // fresh record is always visible as membership here.
  if (still_cached(key)) return;
  ForgetLocked(key);
}

void FreshnessManager::ForgetLocked(const std::string& key) {
  auto it = deps_by_key_.find(key);
  if (it == deps_by_key_.end()) return;
  for (const std::string& term : it->second.terms) {
    auto bucket = keys_by_term_.find(term);
    if (bucket == keys_by_term_.end()) continue;
    bucket->second.erase(key);
    if (bucket->second.empty()) keys_by_term_.erase(bucket);
  }
  for (const std::string& table : it->second.tables) {
    auto bucket = keys_by_table_.find(table);
    if (bucket == keys_by_table_.end()) continue;
    bucket->second.erase(key);
    if (bucket->second.empty()) keys_by_table_.erase(bucket);
  }
  deps_by_key_.erase(it);
}

void FreshnessManager::CollectAffectedLocked(
    const ChangeEvent& event, std::unordered_set<std::string>* affected) {
  // Table dependency: any cached answer whose SQL reads this table shows
  // different snippets once the table has more rows.
  auto table_bucket = keys_by_table_.find(FoldForMatch(event.table));
  if (table_bucket != keys_by_table_.end()) {
    affected->insert(table_bucket->second.begin(),
                     table_bucket->second.end());
  }
  // Term dependency: any cached answer whose lookup probed one of the
  // appended value's tokens can classify differently now (new base-data
  // entry point, previously ignored word that matches, shifted counts).
  // Events carry values pre-tokenized as interned ids (one Tokenize per
  // value at publication, however many listeners and shard replicas
  // consume it); the reverse map is keyed on spellings, so resolve each
  // id through the event's dictionary.
  auto probe_term = [&](const std::string& token) {
    auto term_bucket = keys_by_term_.find(token);
    if (term_bucket == keys_by_term_.end()) return;
    affected->insert(term_bucket->second.begin(), term_bucket->second.end());
  };
  for (const ColumnDelta& delta : event.deltas) {
    if (event.dict != nullptr) {
      for (const std::vector<TokenId>& value_ids : delta.token_ids) {
        for (TokenId id : value_ids) probe_term(event.dict->Spelling(id));
      }
    } else {
      // Dictionary-less event (hand-built in tests): fall back to
      // tokenizing the raw values.
      for (const std::string& value : delta.values) {
        for (const std::string& token : Tokenize(value)) probe_term(token);
      }
    }
  }
}

void FreshnessManager::OnChange(const ChangeEvent& event) {
  // The manager's mutex only guards its own maps; it is NEVER held
  // across a target call — engines call back into Forget from
  // InvalidateWhere, which would self-deadlock otherwise. (No map race
  // opens up: OnChange runs under the change log's exclusive data lock,
  // and every RecordQuery/ForgetEvicted caller holds the shared side.)
  std::vector<Target> targets;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++events_seen_;
    targets = targets_;
  }
  sink_->IncrementCounter("freshness.events", 1);

  // Invalidation bursts get their own trace (they run on the mutator's
  // thread under the exclusive data lock, not inside any request): slow
  // or delta-failing bursts surface in /debug/traces next to the
  // requests they stalled.
  TraceContext burst_trace =
      TraceRecorder::Instance().enabled()
          ? TraceRecorder::Instance().StartTrace("freshness.change")
          : TraceContext{};
  Span burst_span(burst_trace, "freshness.change");
  if (burst_span.active()) {
    burst_span.SetAttr("table", event.table);
    burst_span.SetAttr("sequence", static_cast<int64_t>(event.sequence));
    burst_span.SetAttr("engines", static_cast<int64_t>(targets.size()));
  }

  // 1. Bring every tracked engine's inverted index up to date first, so
  // a query re-admitted right after the invalidation below already sees
  // the appended values. A failed delta (exception or armed failpoint)
  // must not leave that engine serving cached answers its index can no
  // longer back: fall back to evicting its whole cache, so every later
  // query re-translates against whatever the index does hold.
  size_t delta_postings = 0;
  for (const Target& target : targets) {
    bool applied = false;
    try {
      if (SODA_FAILPOINT_STATUS("freshness.apply_delta", "").ok()) {
        delta_postings += target.apply_delta(event);
        applied = true;
      }
    } catch (...) {
    }
    if (applied) continue;
    sink_->IncrementCounter("freshness.delta_failures", 1);
    burst_span.AddEvent("delta_failure", "full cache eviction");
    target.invalidate([](const std::string&) { return true; });
  }
  sink_->IncrementCounter("freshness.delta_postings", delta_postings);
  if (burst_span.active()) {
    burst_span.SetAttr("delta_postings",
                       static_cast<int64_t>(delta_postings));
  }

  // 2. Keyed invalidation for exactly the dependent answers — and the
  // dependent session plans, which live in the same reverse maps but
  // resolve to a hook instead of a cache eviction. Partition them out
  // under the mutex, fire the hooks outside it (they only flip an
  // atomic, so firing under the exclusive data lock is safe and means
  // no serve — readers hold the shared side — can resume a plan the
  // mutation just voided).
  std::unordered_set<std::string> affected;
  std::vector<std::function<void()>> plan_hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    CollectAffectedLocked(event, &affected);
    for (auto it = affected.begin(); it != affected.end();) {
      auto hook = plan_hooks_.find(*it);
      if (hook == plan_hooks_.end()) {
        ++it;
        continue;
      }
      plan_hooks.push_back(std::move(hook->second));
      ForgetLocked(*it);
      plan_hooks_.erase(hook);
      it = affected.erase(it);
    }
  }
  if (!plan_hooks.empty()) {
    for (const std::function<void()>& hook : plan_hooks) hook();
    sink_->IncrementCounter("freshness.plans_invalidated", plan_hooks.size());
  }
  size_t invalidated = 0;
  if (!affected.empty()) {
    auto pred = [&affected](const std::string& key) {
      return affected.count(key) > 0;
    };
    for (const Target& target : targets) {
      invalidated += target.invalidate(pred);
    }
    sink_->IncrementCounter("freshness.keys_invalidated", invalidated);
    std::lock_guard<std::mutex> lock(mu_);
    keys_invalidated_ += invalidated;
    for (const std::string& key : affected) {
      ForgetLocked(key);
    }
  }
  if (burst_span.active()) {
    burst_span.SetAttr("plans_invalidated",
                       static_cast<int64_t>(plan_hooks.size()));
    burst_span.SetAttr("keys_invalidated", static_cast<int64_t>(invalidated));
  }
  burst_span.End();
  if (burst_trace.active()) {
    TraceRecorder::Instance().FinishTrace(burst_trace,
                                          burst_trace.data->ElapsedMs());
  }
}

uint64_t FreshnessManager::events_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_seen_;
}

uint64_t FreshnessManager::keys_invalidated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return keys_invalidated_;
}

size_t FreshnessManager::tracked_keys() const {
  std::lock_guard<std::mutex> lock(mu_);
  return deps_by_key_.size();
}

MetricsSnapshot FreshnessManager::metrics_snapshot() const {
  // Only the PRIVATE sink is snapshotted here: when the caller handed
  // in an external sink (possibly an engine's own), returning its full
  // contents would double-count every engine metric in a merged view.
  return own_sink_ != nullptr ? own_sink_->Snapshot() : MetricsSnapshot{};
}

}  // namespace soda
