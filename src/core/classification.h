// The classification index: a unified lookup over all metadata labels and
// the base-data inverted index (paper Step 1 - Lookup and Figure 5).
//
// "A lookup of a single keyword provides us with all the nodes in the
//  metadata graph where this keyword is found."
//
// Every node label of the metadata graph (entity names, attribute names,
// table/column names, ontology concepts, DBpedia terms, metadata filters
// and aggregations) is indexed under its folded token phrase. Base-data
// phrases are resolved through the inverted index.

#ifndef SODA_CORE_CLASSIFICATION_H_
#define SODA_CORE_CLASSIFICATION_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/entry_point.h"
#include "graph/metadata_graph.h"
#include "text/inverted_index.h"

namespace soda {

class ProbeMemo;

class ClassificationIndex {
 public:
  /// Builds the index over every labeled node of `graph`. `base_data` may
  /// be nullptr when no inverted index is available (metadata-only mode,
  /// used by the Keymantic baseline comparison).
  void Build(const MetadataGraph& graph, const InvertedIndex* base_data);

  /// Folded token-phrase key of `phrase` ("Financial  Instruments" ->
  /// "financial instruments") — the form the *Key probes take.
  static std::string PhraseKey(const std::string& phrase);

  /// Returns all entry points matching the phrase exactly (folded tokens).
  /// Metadata matches come first, base-data matches after.
  std::vector<EntryPoint> Lookup(const std::string& phrase) const;

  /// Lookup(phrase).size() without materializing the entry points — the
  /// complexity accounting only needs candidate counts.
  size_t CountMatches(const std::string& phrase) const;

  /// True when the phrase matches at least one entry point. Early-exits
  /// on the first base-data hit instead of building the postings list.
  bool Matches(const std::string& phrase) const;

  /// Pre-folded variants of the probes above: `key` is PhraseKey(phrase).
  /// The ProbeMemo folds each distinct phrase once and re-probes through
  /// these, so a phrase seen across segmentation attempts and complexity
  /// accounting pays one Tokenize total.
  std::vector<EntryPoint> LookupKey(const std::string& key) const;
  size_t CountKey(const std::string& key) const;
  bool MatchesKey(const std::string& key) const;

  /// Longest-word-combination segmentation (paper Section 4.2.2,
  /// "Keywords"): greedily matches the longest prefix of `words` that the
  /// index knows, then continues with the rest. Unmatched single words are
  /// returned in `ignored` ("'and' might be unknown and we therefore
  /// ignore it"). When `memo` is non-null the match probes go through it,
  /// so repeated combinations across keyword runs — and the entry-point
  /// lookups the caller issues for accepted phrases — are answered from
  /// the memo.
  std::vector<std::string> SegmentKeywords(
      const std::vector<std::string>& words,
      std::vector<std::string>* ignored, ProbeMemo* memo = nullptr) const;

  size_t num_metadata_phrases() const { return metadata_.size(); }

 private:
  // folded phrase -> metadata entry points
  std::unordered_map<std::string, std::vector<EntryPoint>> metadata_;
  const InvertedIndex* base_data_ = nullptr;
};

/// Per-query memo over the classification probes (paper Step 1 issues a
/// storm of them: every segmentation attempt, every accepted phrase's
/// entry-point lookup, every aggregation/group-by count). Each distinct
/// raw phrase is folded ONCE; each probe against the underlying indexes
/// runs at most once per phrase, with cheaper answers derived from
/// richer ones (materialized entries answer counts and match tests).
///
/// A memo belongs to one query-level lookup pass and is NOT thread-safe:
/// per-interpretation stages running on the worker pool must keep using
/// the ClassificationIndex directly.
class ProbeMemo {
 public:
  explicit ProbeMemo(const ClassificationIndex* index) : index_(index) {}
  ProbeMemo(const ProbeMemo&) = delete;
  ProbeMemo& operator=(const ProbeMemo&) = delete;

  /// Memoized ClassificationIndex::Matches. A successful first probe
  /// also materializes the phrase's entry points: segmentation accepts
  /// the phrase and the lookup step fetches its candidates right after,
  /// so the follow-up Lookup becomes a memo hit instead of a re-scan.
  bool Matches(const std::string& phrase);

  /// Memoized ClassificationIndex::CountMatches.
  size_t CountMatches(const std::string& phrase);

  /// Memoized ClassificationIndex::Lookup.
  std::vector<EntryPoint> Lookup(const std::string& phrase);

  /// Probes answered without touching the underlying indexes / probes
  /// that had to go through. Booked as index.probe_memo_{hits,misses}.
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::string key;  // PhraseKey(phrase), computed once
    int matches = -1;  // -1 unknown, else 0/1
    ptrdiff_t count = -1;  // -1 unknown
    bool has_entries = false;
    std::vector<EntryPoint> entries;
  };

  Entry& EntryFor(const std::string& phrase);

  const ClassificationIndex* index_;
  std::unordered_map<std::string, Entry> memo_;  // raw phrase -> entry
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace soda

#endif  // SODA_CORE_CLASSIFICATION_H_
