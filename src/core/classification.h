// The classification index: a unified lookup over all metadata labels and
// the base-data inverted index (paper Step 1 - Lookup and Figure 5).
//
// "A lookup of a single keyword provides us with all the nodes in the
//  metadata graph where this keyword is found."
//
// Every node label of the metadata graph (entity names, attribute names,
// table/column names, ontology concepts, DBpedia terms, metadata filters
// and aggregations) is indexed under its folded token phrase. Base-data
// phrases are resolved through the inverted index.

#ifndef SODA_CORE_CLASSIFICATION_H_
#define SODA_CORE_CLASSIFICATION_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/entry_point.h"
#include "graph/metadata_graph.h"
#include "text/inverted_index.h"

namespace soda {

class ClassificationIndex {
 public:
  /// Builds the index over every labeled node of `graph`. `base_data` may
  /// be nullptr when no inverted index is available (metadata-only mode,
  /// used by the Keymantic baseline comparison).
  void Build(const MetadataGraph& graph, const InvertedIndex* base_data);

  /// Returns all entry points matching the phrase exactly (folded tokens).
  /// Metadata matches come first, base-data matches after.
  std::vector<EntryPoint> Lookup(const std::string& phrase) const;

  /// Lookup(phrase).size() without materializing the entry points — the
  /// complexity accounting only needs candidate counts.
  size_t CountMatches(const std::string& phrase) const;

  /// True when the phrase matches at least one entry point. Early-exits
  /// on the first base-data hit instead of building the postings list.
  bool Matches(const std::string& phrase) const;

  /// Longest-word-combination segmentation (paper Section 4.2.2,
  /// "Keywords"): greedily matches the longest prefix of `words` that the
  /// index knows, then continues with the rest. Unmatched single words are
  /// returned in `ignored` ("'and' might be unknown and we therefore
  /// ignore it").
  std::vector<std::string> SegmentKeywords(
      const std::vector<std::string>& words,
      std::vector<std::string>* ignored) const;

  size_t num_metadata_phrases() const { return metadata_.size(); }

 private:
  // folded phrase -> metadata entry points
  std::unordered_map<std::string, std::vector<EntryPoint>> metadata_;
  const InvertedIndex* base_data_ = nullptr;
};

}  // namespace soda

#endif  // SODA_CORE_CLASSIFICATION_H_
