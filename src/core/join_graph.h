// Table-level join graph derived from the metadata-graph patterns.
//
// SODA's Step 3 discovers joins by matching the Foreign-Key /
// Join-Relationship patterns while traversing the metadata graph and then
// keeps "these which are on a direct path between the entry points"
// (Figure 9). Because the metadata graph is immutable during a search
// session, the discovered join conditions are the same for every query; we
// materialize them once into a table-level graph and run the per-query
// direct-path computation on it. Bridge tables (two outgoing foreign keys,
// Section 4.2.1) are detected with the bridge patterns.
//
// The same immutability argument is applied one level deeper: tables are
// interned into dense TableIds (TableCatalog), adjacency is a flat
// vector-of-EdgeId-vectors instead of a string map, and — since the
// warehouse has only a few hundred tables (paper: 472) — all-pairs
// shortest join paths are precomputed at Build time (one BFS per table,
// distance + parent-edge matrices; O(T·E) build, O(path) reconstruct).
// DirectPath then needs no per-query BFS at all: it min-scans the
// distance matrix over the (source, target) pairs and walks the stored
// parent chain. The string-keyed API is preserved as a thin shim.

#ifndef SODA_CORE_JOIN_GRAPH_H_
#define SODA_CORE_JOIN_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/graph_utils.h"
#include "pattern/matcher.h"

namespace soda {

/// One usable join condition between two physical tables.
struct JoinEdge {
  PhysicalColumnRef from;  // foreign-key side
  PhysicalColumnRef to;    // primary-key side
  bool ignored = false;    // annotated ignore_relationship (war stories)

  std::string ToString() const {
    return from.ToString() + " = " + to.ToString();
  }
  bool operator==(const JoinEdge&) const = default;
};

/// Dense id of a harvested join edge (index into all_edges()).
using EdgeId = uint32_t;
inline constexpr EdgeId kInvalidEdgeId = UINT32_MAX;

/// A bridge table with the two foreign keys that make it one.
struct BridgeInfo {
  std::string bridge_table;
  JoinEdge left;   // bridge -> first entity
  JoinEdge right;  // bridge -> second entity
};

class JoinGraph {
 public:
  /// Harvests all join conditions and bridge tables from the graph using
  /// the Foreign-Key, Join-Relationship and Bridge-Table patterns. With
  /// `precompute_paths` (the default, SodaConfig::enable_closures) the
  /// all-pairs shortest-path closure is built here too; without it
  /// DirectPath falls back to per-call BFS with identical results.
  Status Build(const PatternMatcher& matcher, bool precompute_paths = true);

  /// All join edges touching `table`.
  const std::vector<JoinEdge>& EdgesOf(const std::string& table) const;

  /// Shortest join path (fewest joins) between any table in `from_set` and
  /// any table in `to_set`. Ignored edges are not used. Returns the edges
  /// of the path and appends tables on the path (including endpoints) to
  /// `path_tables`. Empty result + false when no path exists.
  ///
  /// Deterministic pair choice: among all (from, to) pairs the one with
  /// the fewest joins wins, ties broken by from_set order then to_set
  /// order; the path itself is the BFS tree chain of the winning source
  /// (fixed edge-insertion adjacency order). The closure and the BFS
  /// fallback implement exactly the same rule, so the answer is
  /// byte-identical whether the APSP matrices were precomputed or not.
  bool DirectPath(const std::vector<std::string>& from_set,
                  const std::vector<std::string>& to_set,
                  std::vector<JoinEdge>* path_edges,
                  std::vector<std::string>* path_tables) const;

  const std::vector<BridgeInfo>& bridges() const { return bridges_; }
  const std::vector<JoinEdge>& all_edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

  /// The table interner populated by Build (folded name -> dense id).
  const TableCatalog& catalog() const { return catalog_; }
  size_t num_tables() const { return catalog_.size(); }

  /// True when Build precomputed the APSP distance/parent matrices and
  /// DirectPath serves lookups without a BFS.
  bool has_path_closure() const { return !dist_.empty(); }

 private:
  /// BFS from `source` over non-ignored edges in adjacency order,
  /// filling distances and the parent edge of every reached table.
  /// This single routine defines the path tie-breaking: the closure
  /// build runs it per table, the fallback runs it per call.
  void BfsFrom(TableId source, std::vector<uint32_t>* dist,
               std::vector<EdgeId>* parent) const;

  /// Walks the parent chain target -> source, appending output exactly
  /// like the original backward walk did.
  void EmitPath(const EdgeId* parent, TableId source, TableId target,
                std::vector<JoinEdge>* path_edges,
                std::vector<std::string>* path_tables) const;

  void AddEdge(JoinEdge edge);
  void BuildPathClosure();

  std::vector<JoinEdge> edges_;
  std::vector<std::pair<TableId, TableId>> edge_ends_;  // per EdgeId
  TableCatalog catalog_;
  std::vector<std::vector<EdgeId>> adjacency_;       // per TableId
  std::vector<std::vector<JoinEdge>> edges_of_;      // EdgesOf() shim
  std::vector<BridgeInfo> bridges_;

  // APSP closure (empty when Build ran with precompute_paths=false):
  // row-major [source * num_tables + target]. dist_ counts joins
  // (kUnreachable when disconnected); parent_edge_ is the edge that
  // discovered `target` in BfsFrom(source).
  static constexpr uint32_t kUnreachable = UINT32_MAX;
  std::vector<uint32_t> dist_;
  std::vector<EdgeId> parent_edge_;

  static const std::vector<JoinEdge> kEmpty;
};

}  // namespace soda

#endif  // SODA_CORE_JOIN_GRAPH_H_
