// Table-level join graph derived from the metadata-graph patterns.
//
// SODA's Step 3 discovers joins by matching the Foreign-Key /
// Join-Relationship patterns while traversing the metadata graph and then
// keeps "these which are on a direct path between the entry points"
// (Figure 9). Because the metadata graph is immutable during a search
// session, the discovered join conditions are the same for every query; we
// materialize them once into a table-level graph and run the per-query
// direct-path computation on it. Bridge tables (two outgoing foreign keys,
// Section 4.2.1) are detected with the bridge patterns.

#ifndef SODA_CORE_JOIN_GRAPH_H_
#define SODA_CORE_JOIN_GRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/graph_utils.h"
#include "pattern/matcher.h"

namespace soda {

/// One usable join condition between two physical tables.
struct JoinEdge {
  PhysicalColumnRef from;  // foreign-key side
  PhysicalColumnRef to;    // primary-key side
  bool ignored = false;    // annotated ignore_relationship (war stories)

  std::string ToString() const {
    return from.ToString() + " = " + to.ToString();
  }
  bool operator==(const JoinEdge&) const = default;
};

/// A bridge table with the two foreign keys that make it one.
struct BridgeInfo {
  std::string bridge_table;
  JoinEdge left;   // bridge -> first entity
  JoinEdge right;  // bridge -> second entity
};

class JoinGraph {
 public:
  /// Harvests all join conditions and bridge tables from the graph using
  /// the Foreign-Key, Join-Relationship and Bridge-Table patterns.
  Status Build(const PatternMatcher& matcher);

  /// All join edges touching `table`.
  const std::vector<JoinEdge>& EdgesOf(const std::string& table) const;

  /// Shortest join path (fewest joins) between any table in `from_set` and
  /// any table in `to_set`. Ignored edges are not used. Returns the edges
  /// of the path and appends tables on the path (including endpoints) to
  /// `path_tables`. Empty result + false when no path exists.
  bool DirectPath(const std::vector<std::string>& from_set,
                  const std::vector<std::string>& to_set,
                  std::vector<JoinEdge>* path_edges,
                  std::vector<std::string>* path_tables) const;

  const std::vector<BridgeInfo>& bridges() const { return bridges_; }
  const std::vector<JoinEdge>& all_edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

 private:
  void AddEdge(JoinEdge edge);

  std::vector<JoinEdge> edges_;
  std::map<std::string, std::vector<JoinEdge>> adjacency_;  // folded name
  std::vector<BridgeInfo> bridges_;
  static const std::vector<JoinEdge> kEmpty;
};

}  // namespace soda

#endif  // SODA_CORE_JOIN_GRAPH_H_
