#include "core/input_query.h"

#include <cctype>

#include "common/strings.h"

namespace soda {

namespace {

bool IsNumberToken(const std::string& token, InputElement* out) {
  if (token.empty()) return false;
  size_t i = 0;
  if (token[0] == '-' || token[0] == '+') i = 1;
  bool any_digit = false, has_dot = false;
  for (; i < token.size(); ++i) {
    if (std::isdigit(static_cast<unsigned char>(token[i]))) {
      any_digit = true;
    } else if (token[i] == '.' && !has_dot) {
      has_dot = true;
    } else {
      return false;
    }
  }
  if (!any_digit) return false;
  out->kind = InputElement::Kind::kNumber;
  out->number = std::stod(token);
  out->number_is_integer = !has_dot;
  if (!has_dot) out->integer = std::stoll(token);
  return true;
}

bool ParseAggName(const std::string& folded, AggFunc* out) {
  if (folded == "sum") {
    *out = AggFunc::kSum;
  } else if (folded == "count") {
    *out = AggFunc::kCount;
  } else if (folded == "avg") {
    *out = AggFunc::kAvg;
  } else if (folded == "min") {
    *out = AggFunc::kMin;
  } else if (folded == "max") {
    *out = AggFunc::kMax;
  } else {
    return false;
  }
  return true;
}

// Raw token stream: words, parenthesized blobs kept intact for the
// operators that need them (date(...), sum(...), group by (...)).
struct RawToken {
  std::string text;      // word or symbol
  std::string parens;    // content of a directly attached "(...)" if any
  bool has_parens = false;
};

Result<std::vector<RawToken>> Scan(const std::string& text) {
  std::vector<RawToken> tokens;
  size_t i = 0;
  auto skip_space = [&] {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
  };
  while (true) {
    skip_space();
    if (i >= text.size()) break;
    char c = text[i];
    RawToken token;
    if (c == '(') {
      // A free-standing parenthesized blob, e.g. "group by (x, y)".
      size_t depth = 0;
      size_t start = ++i;
      for (; i < text.size(); ++i) {
        if (text[i] == '(') {
          ++depth;
        } else if (text[i] == ')') {
          if (depth == 0) break;
          --depth;
        }
      }
      if (i >= text.size()) {
        return Status::ParseError("unbalanced '(' in input query");
      }
      token.text = "";
      token.parens = std::string(Trim(text.substr(start, i - start)));
      token.has_parens = true;
      ++i;  // consume ')'
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '>' || c == '<' || c == '=') {
      token.text = std::string(1, c);
      ++i;
      if (i < text.size() && text[i] == '=') {
        token.text += '=';
        ++i;
      }
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == ',') {
      ++i;  // commas outside parentheses are noise
      continue;
    }
    // Word, optionally directly followed by "(...)".
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i])) &&
           text[i] != '(' && text[i] != '>' && text[i] != '<' &&
           text[i] != '=' && text[i] != ',') {
      ++i;
    }
    token.text = text.substr(start, i - start);
    if (i < text.size() && text[i] == '(') {
      size_t depth = 0;
      size_t inner = ++i;
      for (; i < text.size(); ++i) {
        if (text[i] == '(') {
          ++depth;
        } else if (text[i] == ')') {
          if (depth == 0) break;
          --depth;
        }
      }
      if (i >= text.size()) {
        return Status::ParseError("unbalanced '(' after '" + token.text +
                                  "'");
      }
      token.parens = std::string(Trim(text.substr(inner, i - inner)));
      token.has_parens = true;
      ++i;  // consume ')'
    }
    tokens.push_back(std::move(token));
  }
  return tokens;
}

}  // namespace

std::string InputElement::ToString() const {
  switch (kind) {
    case Kind::kKeywords:
      return "keywords[" + Join(words, " ") + "]";
    case Kind::kComparison:
      return std::string("cmp[") + CompareOpSymbol(op) + "]";
    case Kind::kDate:
      return "date[" + date.ToString() + "]";
    case Kind::kNumber:
      return number_is_integer ? "number[" + std::to_string(integer) + "]"
                               : StrFormat("number[%g]", number);
    case Kind::kAggregation:
      return std::string("agg[") + AggFuncName(agg) + "(" + agg_argument +
             ")]";
    case Kind::kGroupBy:
      return "groupby[" + Join(group_by_phrases, ", ") + "]";
    case Kind::kTopN:
      return "top[" + std::to_string(integer) + "]";
    case Kind::kConnector:
      return connector_is_and ? "and" : "or";
    case Kind::kBetween:
      return "between";
  }
  return "?";
}

bool InputQuery::HasAggregation() const {
  for (const auto& e : elements) {
    if (e.kind == InputElement::Kind::kAggregation) return true;
  }
  return false;
}

bool InputQuery::HasGroupBy() const {
  for (const auto& e : elements) {
    if (e.kind == InputElement::Kind::kGroupBy) return true;
  }
  return false;
}

std::string InputQuery::ToString() const {
  std::string out;
  for (size_t i = 0; i < elements.size(); ++i) {
    if (i > 0) out += " ";
    out += elements[i].ToString();
  }
  return out;
}

Result<InputQuery> ParseInputQuery(const std::string& text) {
  SODA_ASSIGN_OR_RETURN(std::vector<RawToken> tokens, Scan(text));

  InputQuery query;
  query.raw = text;

  auto keywords = [&]() -> InputElement* {
    if (query.elements.empty() ||
        query.elements.back().kind != InputElement::Kind::kKeywords) {
      InputElement e;
      e.kind = InputElement::Kind::kKeywords;
      query.elements.push_back(std::move(e));
    }
    return &query.elements.back();
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const RawToken& token = tokens[i];
    std::string folded = ToLower(token.text);

    InputElement element;

    // Comparison symbols.
    if (token.text == ">" || token.text == ">=" || token.text == "=" ||
        token.text == "<=" || token.text == "<") {
      element.kind = InputElement::Kind::kComparison;
      if (token.text == ">") element.op = CompareOp::kGt;
      if (token.text == ">=") element.op = CompareOp::kGe;
      if (token.text == "=") element.op = CompareOp::kEq;
      if (token.text == "<=") element.op = CompareOp::kLe;
      if (token.text == "<") element.op = CompareOp::kLt;
      query.elements.push_back(std::move(element));
      continue;
    }
    if (folded == "like") {
      element.kind = InputElement::Kind::kComparison;
      element.op = CompareOp::kLike;
      query.elements.push_back(std::move(element));
      continue;
    }
    if (folded == "and" || folded == "or") {
      element.kind = InputElement::Kind::kConnector;
      element.connector_is_and = folded == "and";
      query.elements.push_back(std::move(element));
      continue;
    }
    if (folded == "between") {
      element.kind = InputElement::Kind::kBetween;
      query.elements.push_back(std::move(element));
      continue;
    }
    // date(YYYY-MM-DD)
    if (folded == "date" && token.has_parens) {
      SODA_ASSIGN_OR_RETURN(Date d, Date::Parse(token.parens));
      element.kind = InputElement::Kind::kDate;
      element.date = d;
      query.elements.push_back(std::move(element));
      continue;
    }
    // top N
    if (folded == "top" && i + 1 < tokens.size()) {
      InputElement n;
      if (IsNumberToken(tokens[i + 1].text, &n) && n.number_is_integer) {
        element.kind = InputElement::Kind::kTopN;
        element.integer = n.integer;
        query.elements.push_back(std::move(element));
        ++i;
        continue;
      }
    }
    // group by (a, b) — also accepts "group by(a, b)" and a separated blob.
    if (folded == "group" && i + 1 < tokens.size() &&
        ToLower(tokens[i + 1].text) == "by") {
      std::string blob;
      size_t consumed = 1;
      if (tokens[i + 1].has_parens) {
        blob = tokens[i + 1].parens;
      } else if (i + 2 < tokens.size() && tokens[i + 2].text.empty() &&
                 tokens[i + 2].has_parens) {
        blob = tokens[i + 2].parens;
        consumed = 2;
      } else {
        return Status::ParseError(
            "group by requires a parenthesized attribute list");
      }
      element.kind = InputElement::Kind::kGroupBy;
      for (auto& phrase : Split(blob, ',')) {
        element.group_by_phrases.push_back(std::string(Trim(phrase)));
      }
      query.elements.push_back(std::move(element));
      i += consumed;
      continue;
    }
    // Aggregations: sum(x) or the separated form "sum (x)".
    AggFunc agg;
    if (ParseAggName(folded, &agg)) {
      if (token.has_parens) {
        element.kind = InputElement::Kind::kAggregation;
        element.agg = agg;
        element.agg_argument = token.parens;
        query.elements.push_back(std::move(element));
        continue;
      }
      if (i + 1 < tokens.size() && tokens[i + 1].text.empty() &&
          tokens[i + 1].has_parens) {
        element.kind = InputElement::Kind::kAggregation;
        element.agg = agg;
        element.agg_argument = tokens[i + 1].parens;
        query.elements.push_back(std::move(element));
        ++i;
        continue;
      }
    }
    // Numbers.
    if (IsNumberToken(token.text, &element)) {
      query.elements.push_back(std::move(element));
      continue;
    }
    // Anything else is a search keyword.
    if (!token.text.empty()) {
      keywords()->words.push_back(token.text);
    }
  }
  return query;
}

}  // namespace soda
