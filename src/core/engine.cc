#include "core/engine.h"

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/failpoint.h"
#include "common/strings.h"
#include "common/trace.h"
#include "core/freshness.h"
#include "storage/change_log.h"

namespace soda {

namespace {

// Every counter series the engine (and the pipeline/snippet code running
// under its sink) can ever emit. Pre-registered at zero on construction
// and replayed into any later-installed sink, so exporters see the full
// series set from the first scrape — not only after the first event of
// each kind (prometheus_metrics_test pins the list).
constexpr const char* kEngineCounterSeries[] = {
    "engine.search", "engine.search_all", "engine.search_all_async",
    "engine.task_exceptions",
    "cache.hit", "cache.miss", "cache.invalidated",
    "cache.stale_insert_skipped",
    "batch.queries", "batch.unique", "batch.interpretations",
    "batch.dedup_hits",
    "session.refines", "session.stages_skipped", "session.constraint_hits",
    "snippet.executed", "snippet.failed", "snippet.exception",
    "snippet.streamed", "snippet.callback_exception",
    "index.probe_memo_hits", "index.probe_memo_misses",
    "closure.traverse_hits", "closure.traverse_misses",
    "closure.path_lookups",
    "trace.spans", "trace.sampled", "trace.dropped", "trace.slow_queries",
};

void PreRegisterEngineCounters(MetricsSink* sink) {
  for (const char* name : kEngineCounterSeries) {
    sink->IncrementCounter(name, 0);
  }
}

// Finishes an engine-owned trace on every exit path — including error
// returns, where the destructor falls back to the trace's own elapsed
// clock — and books the trace.* counters into the engine's sink from
// the recorder's verdict. Constructed with an inactive context when the
// engine joined a caller's trace instead of opening its own.
class OwnedTrace {
 public:
  OwnedTrace(TraceContext ctx, MetricsSink* sink)
      : ctx_(std::move(ctx)), sink_(sink) {}
  ~OwnedTrace() {
    if (!ctx_.active()) return;
    double wall = wall_ms_ >= 0.0 ? wall_ms_ : ctx_.data->ElapsedMs();
    TraceVerdict verdict = TraceRecorder::Instance().FinishTrace(ctx_, wall);
    sink_->IncrementCounter("trace.spans", verdict.spans);
    sink_->IncrementCounter(verdict.kept ? "trace.sampled" : "trace.dropped",
                            1);
    if (verdict.slow) sink_->IncrementCounter("trace.slow_queries", 1);
  }

  OwnedTrace(const OwnedTrace&) = delete;
  OwnedTrace& operator=(const OwnedTrace&) = delete;

  void set_wall_ms(double ms) { wall_ms_ = ms; }

 private:
  TraceContext ctx_;
  MetricsSink* sink_;
  double wall_ms_ = -1.0;
};

size_t ResolveThreads(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Runs a pool fan-out and converts any escaped exception — an armed
// failpoint or a defective stage — into a Status, so one poisoned task
// degrades to a per-query error instead of unwinding through the serving
// layer (ThreadPool::ParallelFor rethrows the first task exception at
// the submitting caller).
template <typename Fn>
Status RunContained(MetricsSink* sink, const char* what, Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    return Status::OK();
  } catch (const std::exception& e) {
    sink->IncrementCounter("engine.task_exceptions", 1);
    return Status::Unavailable(std::string(what) + " threw: " + e.what());
  } catch (...) {
    sink->IncrementCounter("engine.task_exceptions", 1);
    return Status::Unavailable(std::string(what) +
                               " threw a non-standard exception");
  }
}

// Per-result snippet containment: a throwing ExecuteSnippet (or an armed
// snippet.execute failpoint) marks that one result failed and the serve
// continues — snippets are an enrichment, not the answer.
void ExecuteSnippetContained(const Soda& soda, SodaResult* result,
                             MetricsSink* sink) {
  try {
    SODA_FAILPOINT("snippet.execute");
    soda.ExecuteSnippet(result, sink);
  } catch (const std::exception& e) {
    result->executed = false;
    result->execution_status =
        Status::Unavailable(std::string("snippet execution threw: ") +
                            e.what());
    sink->IncrementCounter("snippet.exception", 1);
  } catch (...) {
    result->executed = false;
    result->execution_status =
        Status::Unavailable("snippet execution threw a non-standard exception");
    sink->IncrementCounter("snippet.exception", 1);
  }
  sink->IncrementCounter(result->executed ? "snippet.executed"
                                          : "snippet.failed",
                         1);
}

}  // namespace

// Whitespace runs collapsed — the input tokenizer splits on whitespace,
// so reformatted repeats are the same query (see the header for why case
// is kept). The single definition shared by the cache, the sharded
// router and the invalidation hooks.
std::string NormalizedQueryKey(const std::string& query) {
  return Join(SplitWhitespace(query), " ");
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

Result<std::unique_ptr<SodaEngine>> SodaEngine::Create(
    const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
    SodaConfig config, std::shared_ptr<EntryPointClosure> shared_closure) {
  SODA_ASSIGN_OR_RETURN(
      std::unique_ptr<Soda> soda,
      Soda::Create(db, graph, std::move(patterns), config,
                   std::move(shared_closure)));
  // The recorder is process-global (traces cross engine/router/server
  // layers); an engine only pushes its knobs there when they are set, so
  // building an untraced engine never turns an already-configured
  // recorder off.
  if (config.trace_sample_n != 0 || config.slow_query_threshold_ms != 0.0) {
    TraceRecorder::Instance().Configure(config.trace_sample_n,
                                        config.slow_query_threshold_ms);
  }
  return std::make_unique<SodaEngine>(std::move(soda));
}

SodaEngine::SodaEngine(std::unique_ptr<Soda> soda)
    : soda_(std::move(soda)),
      cache_(soda_->config().cache_capacity),
      default_sink_(std::make_shared<InMemoryMetricsSink>()),
      sink_(default_sink_),
      pool_(ResolveThreads(soda_->config().num_threads)) {
  // Session-resume sub-lists over the Soda-owned stage objects. The
  // drivers skip stages of the wrong kind, so membership alone encodes
  // what a resume re-runs.
  bool seen_sql = false;
  for (const PipelineStage* stage : soda_->stages()) {
    if (stage->name() != "lookup") stages_rank_on_.push_back(stage);
    if (!stage->per_interpretation()) continue;
    if (stage->name() == "sql") seen_sql = true;
    (seen_sql ? stages_sql_ : stages_pre_sql_).push_back(stage);
  }
  // Pre-register every counter and histogram series so exporters see the
  // full set from the first scrape, not only after the first event of
  // each kind (histograms are an InMemoryMetricsSink feature; custom
  // sinks get the counters replayed in set_metrics_sink).
  PreRegisterEngineCounters(default_sink_.get());
  for (const char* name :
       {"search.wall.ms", "batch.wall.ms", "stage.execute.ms",
        "pool.queue_depth", "executor.rows", "executor.tables"}) {
    default_sink_->RegisterHistogram(name);
  }
  for (const PipelineStage* stage : soda_->stages()) {
    default_sink_->RegisterHistogram(std::string("stage.") +
                                     std::string(stage->name()) + ".ms");
  }
}

void SodaEngine::set_metrics_sink(std::shared_ptr<MetricsSink> sink) {
  sink_ = sink != nullptr ? std::move(sink) : default_sink_;
  // A freshly installed exporter sink starts empty; replay the counter
  // pre-registration so its first scrape is as complete as the built-in
  // sink's.
  if (sink_ != default_sink_) PreRegisterEngineCounters(sink_.get());
}

size_t SodaEngine::num_threads() const {
  return pool_.size() == 0 ? 1 : pool_.size();
}

size_t SodaEngine::InvalidateWhere(
    const std::function<bool(const std::string&)>& pred) const {
  // Collect the evicted keys while the predicate runs (under the cache
  // lock — a plain push_back), so the freshness layer can drop their
  // dependency records afterwards instead of leaking them.
  std::vector<std::string> erased_keys;
  size_t erased = cache_.EraseIf([&](const std::string& key) {
    if (!pred(key)) return false;
    if (freshness_ != nullptr) erased_keys.push_back(key);
    return true;
  });
  sink_->IncrementCounter("cache.invalidated", erased);
  if (freshness_ != nullptr) {
    for (const std::string& key : erased_keys) freshness_->Forget(key);
  }
  return erased;
}

std::shared_lock<std::shared_mutex> SodaEngine::ReadGuard() const {
  const Database* db = soda_->database();
  if (db == nullptr) return {};
  return db->change_log().ReaderLock();
}

void SodaEngine::CacheInsert(const std::string& key,
                             const SearchOutput& output) const {
  if (cache_.capacity() == 0) return;
  // The manager keeps the dependency record; the stored copy does not
  // need to carry the term vector through every future cache hit.
  auto stored = std::make_shared<SearchOutput>(output);
  stored->freshness_terms.clear();
  stored->freshness_terms.shrink_to_fit();
  std::optional<std::string> evicted = cache_.Put(key, std::move(stored));
  if (freshness_ != nullptr) {
    freshness_->RecordQuery(key, output);
    // Capacity eviction: the dropped key can no longer be served, so
    // its reverse-map entries would only leak — forget them, unless a
    // concurrent serve re-inserted the same key meanwhile (ForgetEvicted
    // re-checks membership under the manager's mutex).
    if (evicted.has_value()) {
      freshness_->ForgetEvicted(*evicted, [this](const std::string& k) {
        return cache_.Contains(k);
      });
    }
  }
}

// ---------------------------------------------------------------------------
// Single-query path (plain, constrained, and session)
// ---------------------------------------------------------------------------

Result<SearchOutput> SodaEngine::Search(
    const std::string& query, const SessionConstraints& constraints) const {
  return SearchInternal(query, constraints, /*plan=*/nullptr);
}

Result<SearchOutput> SodaEngine::SearchSession(
    const std::string& query, const SessionConstraints& constraints,
    std::shared_ptr<TranslationPlan>* plan) const {
  return SearchInternal(query, constraints, plan);
}

bool SodaEngine::PlanStillFresh(const TranslationPlan& plan) const {
  if (!plan.valid.load(std::memory_order_acquire)) return false;
  // A watched plan's validity is maintained precisely (the freshness
  // hook flips it exactly when a mutation touches its term vocabulary);
  // unwatched plans fall back to the coarse check: any change-log
  // advance voids them.
  if (plan.watched) return true;
  const Database* db = soda_->database();
  if (db == nullptr) return true;
  return db->change_log().sequence() == plan.captured_at_sequence;
}

void SodaEngine::RegisterPlan(
    const std::shared_ptr<TranslationPlan>& plan) const {
  if (freshness_ == nullptr) return;
  std::string reg_key =
      "plan:" + std::to_string(reinterpret_cast<uintptr_t>(plan.get()));
  // The hook only flips an atomic through a weak_ptr: it is safe to fire
  // from OnChange (under the exclusive data lock, outside the manager
  // mutex) and safe against the plan dying first.
  std::weak_ptr<TranslationPlan> weak = plan;
  freshness_->RecordPlan(reg_key, plan->freshness_terms, [weak] {
    if (std::shared_ptr<TranslationPlan> p = weak.lock()) {
      p->valid.store(false, std::memory_order_release);
    }
  });
  plan->watched = true;
  FreshnessManager* manager = freshness_;
  plan->deregister = [manager, reg_key] { manager->ForgetPlan(reg_key); };
}

Result<SearchOutput> SodaEngine::SearchInternal(
    const std::string& query, const SessionConstraints& constraints,
    std::shared_ptr<TranslationPlan>* plan) const {
  // Whole-serve shared data lock: concurrent appends (exclusive holders)
  // order entirely before or after this serve, so the cache probe, the
  // plan freshness check, the pipeline, the snippet scan and the cache
  // insert all see one consistent database state.
  auto data_guard = ReadGuard();
  auto t_start = std::chrono::steady_clock::now();
  sink_->IncrementCounter("engine.search", 1);

  // Join the caller's trace (HTTP request, router dispatch) when one is
  // installed on this thread; otherwise open our own when the recorder
  // is on. The untraced common case is one relaxed load and a branch.
  TraceContext trace_parent = CurrentTraceContext();
  const bool owns_trace =
      !trace_parent.active() && TraceRecorder::Instance().enabled();
  if (owns_trace) {
    trace_parent = TraceRecorder::Instance().StartTrace("engine.search");
  }
  OwnedTrace owned_trace(owns_trace ? trace_parent : TraceContext{},
                         sink_.get());
  Span search_span(trace_parent, "engine.search");
  if (search_span.active()) search_span.SetAttr("query", query);

  const bool constrained = !constraints.empty();
  const std::string normalized = NormalizedQueryKey(query);
  const std::string key = ConstrainedCacheKey(normalized, constraints);
  const bool is_refine = plan != nullptr && *plan != nullptr;
  if (is_refine) sink_->IncrementCounter("session.refines", 1);

  if (std::shared_ptr<const SearchOutput> cached = cache_.Get(key)) {
    // Deliberate copy: the payload is bounded (top_n statements x
    // snippet_rows rows) and the response needs its own counter fields;
    // measured hit path stays ~100x faster than the pipeline.
    sink_->IncrementCounter("cache.hit", 1);
    if (constrained) sink_->IncrementCounter("session.constraint_hits", 1);
    if (plan != nullptr) sink_->IncrementCounter("session.stages_skipped", 5);
    SearchOutput output = *cached;
    output.from_cache = true;
    output.stages_skipped = 5;
    CacheStats stats = cache_.stats();
    output.cache_hits = stats.hits;
    output.cache_misses = stats.misses;
    output.threads_used = num_threads();
    output.timings = StepTimings{};  // this response did no pipeline work
    output.timings.wall_ms = MsSince(t_start);
    sink_->Observe("search.wall.ms", output.timings.wall_ms);
    if (search_span.active()) search_span.SetAttr("cache", "hit");
    owned_trace.set_wall_ms(output.timings.wall_ms);
    return output;
  }
  sink_->IncrementCounter("cache.miss", 1);
  if (search_span.active()) search_span.SetAttr("cache", "miss");

  const SodaConfig& config = soda_->config();
  QueryContext ctx(query);
  ctx.config = &config;
  ctx.metrics = sink_.get();
  ctx.trace = search_span.context();
  if (constrained) ctx.constraints = &constraints;
  ctx.collect_freshness_terms = freshness_ != nullptr;
  const std::vector<const PipelineStage*>& stages = soda_->stages();

  // Resume decision: the held plan must answer this very question and
  // still reflect the current base data. Bindings select which stages
  // the resume can skip — pins/bans only gate Step 5, so matching
  // bindings let the post-Filters states be reused wholesale, while a
  // binding change re-ranks from the (always constraint-independent)
  // Step-1 lookup.
  TranslationPlan* resume = nullptr;
  if (is_refine && (*plan)->key == normalized && PlanStillFresh(**plan)) {
    resume = plan->get();
  }
  const std::string bindings_fp = constraints.BindingsFingerprint();
  const bool reuse_states =
      resume != nullptr && resume->bindings_fp == bindings_fp;
  const bool capture = plan != nullptr && !reuse_states;
  size_t stages_skipped = 0;

  if (resume != nullptr) {
    // Copies, never moves: the plan stays resumable for the next Refine.
    ctx.parsed = resume->parsed;
    ctx.lookup = resume->lookup;
    ctx.freshness_terms = resume->freshness_terms;
    if (reuse_states) {
      ctx.states = resume->states;  // SqlStage mutates states in place
      stages_skipped = 4;           // lookup, rank, tables, filters
    } else {
      stages_skipped = 1;  // lookup
      SODA_RETURN_NOT_OK(RunQueryStages(stages_rank_on_, &ctx));
    }
  } else {
    // Query-level prefix (lookup, rank) runs serially — it is cheap and
    // produces the independent per-interpretation states.
    SODA_RETURN_NOT_OK(RunQueryStages(stages, &ctx));
  }

  // Fan the remaining per-interpretation stages out across the pool, one
  // task per interpretation. Each task touches only its own state; the
  // shared context is read-only. A capturing run splits the fan-out at
  // the Step-4/5 boundary to snapshot the reusable states.
  sink_->Observe("pool.queue_depth",
                 static_cast<double>(pool_.queue_depth()));
  std::vector<InterpretationState> snapshot;
  SODA_RETURN_NOT_OK(
      RunContained(sink_.get(), "interpretation fan-out", [&] {
        if (reuse_states) {
          pool_.ParallelFor(ctx.states.size(), [&](size_t i) {
            SODA_FAILPOINT("engine.pool_task");
            RunInterpretationStages(stages_sql_, ctx, &ctx.states[i]);
          });
        } else if (capture) {
          pool_.ParallelFor(ctx.states.size(), [&](size_t i) {
            SODA_FAILPOINT("engine.pool_task");
            RunInterpretationStages(stages_pre_sql_, ctx, &ctx.states[i]);
          });
          snapshot = ctx.states;  // post-Filters, pre-Sql
          pool_.ParallelFor(ctx.states.size(), [&](size_t i) {
            RunInterpretationStages(stages_sql_, ctx, &ctx.states[i]);
          });
        } else {
          pool_.ParallelFor(ctx.states.size(), [&](size_t i) {
            SODA_FAILPOINT("engine.pool_task");
            RunInterpretationStages(stages, ctx, &ctx.states[i]);
          });
        }
      }));
  if (plan != nullptr && stages_skipped > 0) {
    sink_->IncrementCounter("session.stages_skipped", stages_skipped);
  }

  // Capture before FinalizeOutput, which consumes the context fields.
  std::shared_ptr<TranslationPlan> captured;
  if (capture) {
    captured = std::make_shared<TranslationPlan>();
    captured->key = normalized;
    captured->parsed = ctx.parsed;
    captured->lookup = ctx.lookup;
    captured->bindings_fp = bindings_fp;
    captured->freshness_terms = ctx.freshness_terms;
    captured->states = std::move(snapshot);
    for (InterpretationState& state : captured->states) {
      // A resumed run books only the stage work it actually did.
      state.tables_ms = 0.0;
      state.filters_ms = 0.0;
      state.sql_ms = 0.0;
    }
    const Database* db = soda_->database();
    captured->captured_at_sequence =
        db != nullptr ? db->change_log().sequence() : 0;
    RegisterPlan(captured);
  }

  SearchOutput output = FinalizeOutput(std::move(ctx));
  output.stages_skipped = stages_skipped;

  if (config.execute_snippets && soda_->database() != nullptr) {
    auto t_exec = std::chrono::steady_clock::now();
    Span exec_span(search_span.context(), "stage.execute");
    pool_.ParallelFor(output.results.size(), [&](size_t i) {
      ExecuteSnippetContained(*soda_, &output.results[i], sink_.get());
    });
    if (exec_span.active()) {
      exec_span.SetAttr("snippets",
                        static_cast<int64_t>(output.results.size()));
    }
    exec_span.End();
    output.timings.execute_ms = MsSince(t_exec);
    sink_->Observe("stage.execute.ms", output.timings.execute_ms);
  }
  output.threads_used = num_threads();
  output.timings.wall_ms = MsSince(t_start);
  sink_->Observe("search.wall.ms", output.timings.wall_ms);
  owned_trace.set_wall_ms(output.timings.wall_ms);

  // Cache the fully materialized answer (statements + snippets). The
  // stored copy keeps from_cache=false; hits patch their own counters.
  CacheInsert(key, output);

  CacheStats stats = cache_.stats();
  output.cache_hits = stats.hits;
  output.cache_misses = stats.misses;
  // Hand the new plan over last: an error on any earlier path leaves the
  // caller's previous plan untouched.
  if (capture) *plan = std::move(captured);
  return output;
}

// ---------------------------------------------------------------------------
// Batch translation core
// ---------------------------------------------------------------------------

struct SodaEngine::BatchItem {
  std::string key;                  // normalized query (the cache key)
  std::vector<size_t> occurrences;  // input indices, ascending
  bool from_cache = false;
  Result<SearchOutput> output{Status::Internal("batch item not computed")};
};

std::vector<SodaEngine::BatchItem> SodaEngine::TranslateBatch(
    std::span<const std::string> queries, bool execute,
    const TraceContext& trace) const {
  auto t_start = std::chrono::steady_clock::now();

  // Dedup identical normalized queries *before* the cache is probed, so
  // repeats inside one batch cost one pipeline run and one miss.
  std::vector<BatchItem> items;
  std::unordered_map<std::string, size_t> item_of_key;
  for (size_t i = 0; i < queries.size(); ++i) {
    std::string key = NormalizedQueryKey(queries[i]);
    auto [it, inserted] = item_of_key.emplace(std::move(key), items.size());
    if (inserted) {
      BatchItem item;
      item.key = it->first;
      items.push_back(std::move(item));
    }
    items[it->second].occurrences.push_back(i);
  }
  sink_->IncrementCounter("batch.queries", queries.size());
  sink_->IncrementCounter("batch.unique", items.size());

  // Probe the cache once per unique key.
  std::vector<size_t> misses;  // item indices that must run the pipeline
  for (size_t it_idx = 0; it_idx < items.size(); ++it_idx) {
    BatchItem& item = items[it_idx];
    if (std::shared_ptr<const SearchOutput> cached = cache_.Get(item.key)) {
      sink_->IncrementCounter("cache.hit", 1);
      item.from_cache = true;
      item.output = *cached;
    } else {
      sink_->IncrementCounter("cache.miss", 1);
      misses.push_back(it_idx);
    }
  }

  const SodaConfig& config = soda_->config();
  const std::vector<const PipelineStage*>& stages = soda_->stages();

  // Steps 1-2 once per unique miss, fanned across the pool: query
  // contexts are independent and the step objects are stateless.
  std::vector<std::unique_ptr<QueryContext>> contexts;
  std::vector<Status> prefix_status(misses.size(), Status::OK());
  contexts.reserve(misses.size());
  // One span per unique miss, open across both fan-outs below so its
  // duration covers that query's full pipeline; stage spans created by
  // the drivers parent under it through ctx->trace. Inert (and unmoved
  // past a reserve) when the batch is untraced.
  std::vector<Span> query_spans;
  query_spans.reserve(misses.size());
  for (size_t miss_idx : misses) {
    auto ctx =
        std::make_unique<QueryContext>(queries[items[miss_idx].occurrences[0]]);
    ctx->config = &config;
    ctx->metrics = sink_.get();
    ctx->collect_freshness_terms = freshness_ != nullptr;
    Span query_span(trace, "batch.query");
    if (query_span.active()) query_span.SetAttr("query", ctx->raw_query);
    ctx->trace = query_span.context();
    query_spans.push_back(std::move(query_span));
    contexts.push_back(std::move(ctx));
  }
  sink_->Observe("pool.queue_depth",
                 static_cast<double>(pool_.queue_depth()));
  pool_.ParallelFor(contexts.size(), [&](size_t i) {
    // Each task writes only its own slot, so an exception (or armed
    // failpoint) poisons one query's prefix, never the batch.
    try {
      SODA_FAILPOINT("engine.pool_task");
      prefix_status[i] = RunQueryStages(stages, contexts[i].get());
    } catch (const std::exception& e) {
      prefix_status[i] = Status::Unavailable(
          std::string("pipeline prefix threw: ") + e.what());
      sink_->IncrementCounter("engine.task_exceptions", 1);
    } catch (...) {
      prefix_status[i] =
          Status::Unavailable("pipeline prefix threw a non-standard exception");
      sink_->IncrementCounter("engine.task_exceptions", 1);
    }
  });

  // Steps 3-5 over one flat (query, interpretation) task list: a batch
  // of narrow queries load-balances exactly like one wide query.
  std::vector<std::pair<size_t, size_t>> units;  // (context idx, state idx)
  for (size_t c = 0; c < contexts.size(); ++c) {
    if (!prefix_status[c].ok()) continue;
    for (size_t s = 0; s < contexts[c]->states.size(); ++s) {
      units.emplace_back(c, s);
    }
  }
  sink_->IncrementCounter("batch.interpretations", units.size());
  // One slot per unit (several units of one context run concurrently, so
  // a shared per-context status would race); folded serially below.
  std::vector<Status> unit_status(units.size(), Status::OK());
  pool_.ParallelFor(units.size(), [&](size_t u) {
    auto [c, s] = units[u];
    try {
      SODA_FAILPOINT("engine.pool_task");
      RunInterpretationStages(stages, *contexts[c], &contexts[c]->states[s]);
    } catch (const std::exception& e) {
      unit_status[u] = Status::Unavailable(
          std::string("interpretation task threw: ") + e.what());
      sink_->IncrementCounter("engine.task_exceptions", 1);
    } catch (...) {
      unit_status[u] = Status::Unavailable(
          "interpretation task threw a non-standard exception");
      sink_->IncrementCounter("engine.task_exceptions", 1);
    }
  });
  for (size_t u = 0; u < units.size(); ++u) {
    size_t c = units[u].first;
    if (!unit_status[u].ok() && prefix_status[c].ok()) {
      prefix_status[c] = unit_status[u];
    }
  }

  // Deterministic per-query merge, in miss order.
  for (size_t c = 0; c < contexts.size(); ++c) {
    BatchItem& item = items[misses[c]];
    if (!prefix_status[c].ok()) {
      item.output = prefix_status[c];
      query_spans[c].SetStatus(prefix_status[c].message());
      query_spans[c].End();
      continue;
    }
    item.output = FinalizeOutput(std::move(*contexts[c]));
    query_spans[c].End();
  }

  // Snippet execution for the sync path: again one flat task list across
  // every (miss item, result) pair.
  if (execute && config.execute_snippets && soda_->database() != nullptr) {
    auto t_exec = std::chrono::steady_clock::now();
    std::vector<std::pair<size_t, size_t>> snips;  // (item idx, result idx)
    for (size_t miss_idx : misses) {
      BatchItem& item = items[miss_idx];
      if (!item.output.ok()) continue;
      for (size_t r = 0; r < item.output->results.size(); ++r) {
        snips.emplace_back(miss_idx, r);
      }
    }
    Span exec_span(trace, "stage.execute");
    if (exec_span.active()) {
      exec_span.SetAttr("snippets", static_cast<int64_t>(snips.size()));
    }
    pool_.ParallelFor(snips.size(), [&](size_t i) {
      auto [it_idx, r] = snips[i];
      ExecuteSnippetContained(*soda_, &items[it_idx].output->results[r],
                              sink_.get());
    });
    exec_span.End();
    double exec_ms = MsSince(t_exec);
    sink_->Observe("stage.execute.ms", exec_ms);
    // Per-item attribution of a shared fan-out is ill-defined; every
    // computed output carries the batch-level execution wall time.
    for (size_t miss_idx : misses) {
      BatchItem& item = items[miss_idx];
      if (item.output.ok()) item.output->timings.execute_ms = exec_ms;
    }
  }

  double wall_ms = MsSince(t_start);
  for (size_t miss_idx : misses) {
    BatchItem& item = items[miss_idx];
    if (!item.output.ok()) continue;
    item.output->threads_used = num_threads();
    item.output->timings.wall_ms = wall_ms;
  }
  sink_->Observe("batch.wall.ms", wall_ms);
  return items;
}

std::vector<Result<SearchOutput>> SodaEngine::ExpandBatch(
    std::vector<BatchItem> items, size_t query_count,
    bool mark_dedup_as_cached,
    std::chrono::steady_clock::time_point batch_start) const {
  const bool cache_enabled = cache_.capacity() > 0;

  // Book the in-batch repeats: the unique probe already counted one
  // miss (or hit); each further occurrence of the same normalized query
  // is a hit against the entry the batch itself materialized.
  for (const BatchItem& item : items) {
    if (!item.output.ok() || item.occurrences.size() <= 1) continue;
    size_t repeats = item.occurrences.size() - 1;
    cache_.RecordDedupHits(repeats);
    sink_->IncrementCounter("batch.dedup_hits", repeats);
  }

  CacheStats stats = cache_.stats();
  std::vector<Result<SearchOutput>> outputs(
      query_count, Result<SearchOutput>(Status::Internal("unmapped query")));
  for (const BatchItem& item : items) {
    for (size_t occ = 0; occ < item.occurrences.size(); ++occ) {
      size_t input_idx = item.occurrences[occ];
      if (!item.output.ok()) {
        outputs[input_idx] = item.output.status();
        continue;
      }
      SearchOutput output = *item.output;
      // from_cache promises the payload was served materialized (snippets
      // included). That holds for probe hits always, and for in-batch
      // repeats only on the sync path — async repeats are copies of the
      // still-unexecuted translation, so the async caller keeps
      // mark_dedup_as_cached off.
      bool served_from_cache =
          occ == 0 ? item.from_cache
                   : (item.from_cache ||
                      (cache_enabled && mark_dedup_as_cached));
      output.from_cache = served_from_cache;
      if (served_from_cache) {
        // Like the single-query hit path: this response did no pipeline
        // work of its own, and the stored entry's cold-run wall time is
        // not this response's latency — stamp this call's elapsed time.
        output.timings = StepTimings{};
        output.timings.wall_ms = MsSince(batch_start);
      }
      output.cache_hits = stats.hits;
      output.cache_misses = stats.misses;
      output.threads_used = num_threads();
      outputs[input_idx] = std::move(output);
    }
  }
  return outputs;
}

// ---------------------------------------------------------------------------
// SearchAll (sync batch)
// ---------------------------------------------------------------------------

std::vector<Result<SearchOutput>> SodaEngine::SearchAll(
    std::span<const std::string> queries) const {
  if (queries.empty()) return {};
  auto data_guard = ReadGuard();
  auto t_start = std::chrono::steady_clock::now();
  sink_->IncrementCounter("engine.search_all", 1);

  TraceContext trace_parent = CurrentTraceContext();
  const bool owns_trace =
      !trace_parent.active() && TraceRecorder::Instance().enabled();
  if (owns_trace) {
    trace_parent = TraceRecorder::Instance().StartTrace("engine.search_all");
  }
  OwnedTrace owned_trace(owns_trace ? trace_parent : TraceContext{},
                         sink_.get());
  Span batch_span(trace_parent, "engine.search_all");
  if (batch_span.active()) {
    batch_span.SetAttr("queries", static_cast<int64_t>(queries.size()));
  }

  std::vector<BatchItem> items =
      TranslateBatch(queries, /*execute=*/true, batch_span.context());

  // Insert the fully materialized computed entries, keyed on the
  // normalized query after dedup — one Put per unique miss. The stored
  // copy keeps from_cache=false and unset counters, exactly like the
  // single-query path.
  for (const BatchItem& item : items) {
    if (item.from_cache || !item.output.ok()) continue;
    CacheInsert(item.key, *item.output);
  }
  std::vector<Result<SearchOutput>> outputs =
      ExpandBatch(std::move(items), queries.size(),
                  /*mark_dedup_as_cached=*/true, t_start);
  batch_span.End();
  owned_trace.set_wall_ms(MsSince(t_start));
  return outputs;
}

// ---------------------------------------------------------------------------
// Async snippet streaming
// ---------------------------------------------------------------------------

namespace {

/// Shared state of one unique query's snippet stream. Result slots are
/// written by exactly one task each; the task that drops `remaining` to
/// zero observes all earlier writes through the acq_rel decrement and
/// owns the cache insertion.
struct StreamState {
  SearchOutput output;
  std::vector<size_t> occurrences;
  std::string key;
  SnippetCallback on_snippet;  // one copy per unique query, not per task
  bool run_execution = false;  // false when served from cache (or disabled)
  bool cache_insert = false;   // insert the materialized output when done
  /// Change-log sequence at translation time. The deferred cache insert
  /// is skipped when the log moved past it meanwhile — a mutation
  /// between translation and the last snippet already invalidated this
  /// key's dependents, and inserting the stale answer afterwards would
  /// undo that forever.
  uint64_t translated_at_sequence = 0;
  std::atomic<size_t> remaining{0};
};

}  // namespace

std::vector<Result<SearchOutput>> SodaEngine::SearchAllAsync(
    std::span<const std::string> queries, SnippetCallback on_snippet,
    SnippetBarrier* barrier) const {
  if (queries.empty()) return {};
  auto data_guard = ReadGuard();
  auto t_start = std::chrono::steady_clock::now();
  sink_->IncrementCounter("engine.search_all_async", 1);

  // The async trace outlives this call: snippet tasks carry the batch
  // span's context into the pool and append their spans after the trace
  // was finished — TraceData is shared and append-safe, so stragglers
  // still land in the archived record.
  TraceContext trace_parent = CurrentTraceContext();
  const bool owns_trace =
      !trace_parent.active() && TraceRecorder::Instance().enabled();
  if (owns_trace) {
    trace_parent =
        TraceRecorder::Instance().StartTrace("engine.search_all_async");
  }
  OwnedTrace owned_trace(owns_trace ? trace_parent : TraceContext{},
                         sink_.get());
  Span batch_span(trace_parent, "engine.search_all_async");
  if (batch_span.active()) {
    batch_span.SetAttr("queries", static_cast<int64_t>(queries.size()));
  }

  const SodaConfig& config = soda_->config();
  const Database* db = soda_->database();
  const bool can_execute = config.execute_snippets && db != nullptr;
  const uint64_t translated_at_sequence =
      db != nullptr ? db->change_log().sequence() : 0;

  std::vector<BatchItem> items =
      TranslateBatch(queries, /*execute=*/false, batch_span.context());

  // Snapshot the per-unique stream states before the items are consumed
  // by ExpandBatch, and register every expected callback up front so the
  // barrier can never observe a transient zero while later items are
  // still being scheduled.
  std::vector<std::shared_ptr<StreamState>> streams;
  size_t expected_callbacks = 0;
  for (const BatchItem& item : items) {
    if (!item.output.ok()) continue;
    if (item.output->results.empty()) {
      // Nothing to stream, so no task will ever do the deferred cache
      // insert — cache the (empty) answer now, like the sync paths do.
      if (!item.from_cache) {
        CacheInsert(item.key, *item.output);
      }
      continue;
    }
    auto stream = std::make_shared<StreamState>();
    stream->output = *item.output;
    stream->occurrences = item.occurrences;
    stream->key = item.key;
    stream->on_snippet = on_snippet;
    stream->run_execution = can_execute && !item.from_cache;
    stream->cache_insert = !item.from_cache;
    stream->translated_at_sequence = translated_at_sequence;
    stream->remaining.store(stream->output.results.size(),
                            std::memory_order_relaxed);
    expected_callbacks +=
        stream->output.results.size() * stream->occurrences.size();
    streams.push_back(std::move(stream));
  }
  if (barrier != nullptr) barrier->Expect(expected_callbacks);

  std::vector<Result<SearchOutput>> outputs =
      ExpandBatch(std::move(items), queries.size(),
                  /*mark_dedup_as_cached=*/false, t_start);

  // Release the serve's shared lock before scheduling the snippet
  // tasks: on a workerless pool Submit runs the task inline on this
  // thread, and its own ReadGuard must not re-enter the shared_mutex
  // (UB, and a deadlock with a queued writer). The tasks re-acquire for
  // themselves; the sequence check above keeps a mutation that sneaks
  // into the gap from ever caching a stale answer.
  if (data_guard.owns_lock()) data_guard.unlock();

  // One task per (unique query, result): execute the snippet, then fan
  // the callback out to every occurrence of that query in the batch —
  // exactly one delivery per (query_index, result_index) pair.
  const TraceContext stream_trace = batch_span.context();
  for (const std::shared_ptr<StreamState>& stream : streams) {
    for (size_t r = 0; r < stream->output.results.size(); ++r) {
      pool_.Submit([this, stream, barrier, r, stream_trace] {
        // Pool tasks run outside the submitting call's data guard, so
        // each takes its own shared lock around the snippet scan and the
        // (possible) cache insert.
        auto data_guard = ReadGuard();
        // Explicit context capture is how the trace crosses the pool
        // boundary: this span parents under the batch span even though
        // it starts on a worker after SearchAllAsync returned.
        Span snippet_span(stream_trace, "snippet.stream");
        if (snippet_span.active()) {
          snippet_span.SetAttr("result", static_cast<int64_t>(r));
        }
        SodaResult& result = stream->output.results[r];
        if (stream->run_execution) {
          // Contained: a throwing snippet (or armed failpoint) marks this
          // one result failed; the callbacks below still fan out and the
          // barrier Deliver still runs, so Wait() never hangs on a fault.
          ExecuteSnippetContained(*soda_, &result, sink_.get());
        }
        std::vector<std::exception_ptr> exceptions;
        exceptions.reserve(stream->occurrences.size());
        for (size_t query_index : stream->occurrences) {
          std::exception_ptr exception;
          if (stream->on_snippet) {
            try {
              stream->on_snippet(query_index, r, result);
            } catch (...) {
              exception = std::current_exception();
              sink_->IncrementCounter("snippet.callback_exception", 1);
            }
          }
          sink_->IncrementCounter("snippet.streamed", 1);
          exceptions.push_back(std::move(exception));
        }
        if (stream->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
            stream->cache_insert) {
          // Last snippet of this query: cache the materialized answer —
          // unless base data moved since translation (the stored answer
          // would be stale and its invalidation already happened).
          const Database* db = soda_->database();
          if (db == nullptr ||
              db->change_log().sequence() == stream->translated_at_sequence) {
            CacheInsert(stream->key, stream->output);
          } else {
            sink_->IncrementCounter("cache.stale_insert_skipped", 1);
          }
        }
        // End (and append) the span before delivering: a caller may
        // finish the trace as soon as Wait() returns, and a span
        // recorded after that would be dropped as an orphan.
        snippet_span.End();
        // Deliver last: once the barrier reports drained, the cache
        // insertion (done by whichever task decremented to zero) has
        // already happened — Wait() is a true completion point.
        if (barrier != nullptr) {
          for (std::exception_ptr& exception : exceptions) {
            barrier->Deliver(std::move(exception));
          }
        }
      });
    }
  }
  sink_->Observe("pool.queue_depth",
                 static_cast<double>(pool_.queue_depth()));
  batch_span.End();
  owned_trace.set_wall_ms(MsSince(t_start));
  return outputs;
}

Result<SearchOutput> SodaEngine::SearchAsync(const std::string& query,
                                             SnippetCallback on_snippet,
                                             SnippetBarrier* barrier) const {
  std::vector<Result<SearchOutput>> outputs =
      SearchAllAsync(std::span<const std::string>(&query, 1),
                     std::move(on_snippet), barrier);
  return std::move(outputs[0]);
}

}  // namespace soda
