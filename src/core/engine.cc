#include "core/engine.h"

#include <chrono>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace soda {

namespace {

size_t ResolveThreads(size_t configured) {
  if (configured != 0) return configured;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

// Cache key: whitespace runs collapsed — the input tokenizer splits on
// whitespace, so reformatted repeats are the same query. Case is NOT
// folded: comparison literals ("family name = Meier") compare
// case-sensitively in the executor, so differently-cased queries can
// have genuinely different answers.
std::string CacheKey(const std::string& query) {
  return Join(SplitWhitespace(query), " ");
}

}  // namespace

Result<std::unique_ptr<SodaEngine>> SodaEngine::Create(
    const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
    SodaConfig config) {
  SODA_ASSIGN_OR_RETURN(std::unique_ptr<Soda> soda,
                        Soda::Create(db, graph, std::move(patterns), config));
  return std::make_unique<SodaEngine>(std::move(soda));
}

SodaEngine::SodaEngine(std::unique_ptr<Soda> soda)
    : soda_(std::move(soda)),
      pool_(ResolveThreads(soda_->config().num_threads)),
      cache_(soda_->config().cache_capacity) {}

size_t SodaEngine::num_threads() const {
  return pool_.size() == 0 ? 1 : pool_.size();
}

Result<SearchOutput> SodaEngine::Search(const std::string& query) const {
  SODA_RETURN_NOT_OK(soda_->init_status());
  auto t_start = std::chrono::steady_clock::now();

  const std::string key = CacheKey(query);
  if (std::shared_ptr<const SearchOutput> cached = cache_.Get(key)) {
    // Deliberate copy: the payload is bounded (top_n statements x
    // snippet_rows rows) and the response needs its own counter fields;
    // measured hit path stays ~100x faster than the pipeline.
    SearchOutput output = *cached;
    output.from_cache = true;
    CacheStats stats = cache_.stats();
    output.cache_hits = stats.hits;
    output.cache_misses = stats.misses;
    output.threads_used = num_threads();
    output.timings = StepTimings{};  // this response did no pipeline work
    output.timings.wall_ms = MsSince(t_start);
    return output;
  }

  const SodaConfig& config = soda_->config();
  QueryContext ctx(query);
  ctx.config = &config;
  const std::vector<const PipelineStage*>& stages = soda_->stages();

  // Query-level prefix (lookup, rank) runs serially — it is cheap and
  // produces the independent per-interpretation states.
  SODA_RETURN_NOT_OK(RunQueryStages(stages, &ctx));

  // Fan Steps 3-5 out across the pool, one task per interpretation. Each
  // task touches only its own state; the shared context is read-only.
  pool_.ParallelFor(ctx.states.size(), [&](size_t i) {
    RunInterpretationStages(stages, ctx, &ctx.states[i]);
  });

  SearchOutput output = FinalizeOutput(std::move(ctx));

  if (config.execute_snippets && soda_->database() != nullptr) {
    auto t_exec = std::chrono::steady_clock::now();
    pool_.ParallelFor(output.results.size(), [&](size_t i) {
      soda_->ExecuteSnippet(&output.results[i]);
    });
    output.timings.execute_ms = MsSince(t_exec);
  }
  output.threads_used = num_threads();
  output.timings.wall_ms = MsSince(t_start);

  // Cache the fully materialized answer (statements + snippets). The
  // stored copy keeps from_cache=false; hits patch their own counters.
  cache_.Put(key, std::make_shared<const SearchOutput>(output));

  CacheStats stats = cache_.stats();
  output.cache_hits = stats.hits;
  output.cache_misses = stats.misses;
  return output;
}

}  // namespace soda
