// SODA's input patterns (paper Sections 4.2.2 and 4.3).
//
// The query language is keywords extended with a small operator set:
//
//   <search keywords> [ [AND|OR] <search keywords> |
//                       <comparison operator> <search keyword> ]
//   <search keywords> [ ... | <comparison operator> date(YYYY-MM-DD) ]
//   <aggregation operator> (<aggregation attribute>) [<search keywords>]
//       [group by (<attribute1, ..., attributeN>)]
//
// plus `top N` and `between date(..) date(..)`. The parser turns the raw
// string into a sequence of typed elements; keyword groups are classified
// later by the lookup step.

#ifndef SODA_CORE_INPUT_QUERY_H_
#define SODA_CORE_INPUT_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/date.h"
#include "common/status.h"
#include "sql/ast.h"

namespace soda {

/// One parsed element of the input query.
struct InputElement {
  enum class Kind {
    kKeywords,     // a run of plain search keywords
    kComparison,   // > >= = <= < like
    kDate,         // date(YYYY-MM-DD)
    kNumber,       // numeric literal
    kAggregation,  // sum(x), count(), avg(x), ...
    kGroupBy,      // group by (a, b)
    kTopN,         // top N
    kConnector,    // and / or
    kBetween,      // between — expects two literals after it
  };

  Kind kind = Kind::kKeywords;

  std::vector<std::string> words;   // kKeywords
  CompareOp op = CompareOp::kEq;    // kComparison
  Date date;                        // kDate
  double number = 0.0;              // kNumber
  bool number_is_integer = false;   // kNumber
  int64_t integer = 0;              // kNumber / kTopN
  AggFunc agg = AggFunc::kCount;    // kAggregation
  std::string agg_argument;         // kAggregation; empty for count()
  std::vector<std::string> group_by_phrases;  // kGroupBy
  bool connector_is_and = true;     // kConnector

  std::string ToString() const;
};

/// The parsed input query.
struct InputQuery {
  std::string raw;
  std::vector<InputElement> elements;

  bool HasAggregation() const;
  bool HasGroupBy() const;
  std::string ToString() const;
};

/// Parses the SODA input language. Never fails on unknown words (they are
/// keywords by definition); fails only on malformed operator syntax such as
/// an unterminated parenthesis or a bad date.
Result<InputQuery> ParseInputQuery(const std::string& text);

}  // namespace soda

#endif  // SODA_CORE_INPUT_QUERY_H_
