// Step 4 - Filters: collect filter conditions for one interpretation.
//
// "Filters can be found in two ways: a) by parsing the input query or
//  b) by looking for filter conditions while traversing the metadata
//  graph." (paper Section 3, Step 4)
//
// Three sources:
//   1. base-data entry points — equality filters column = 'value'
//      (connecting "Zürich" to the city column of the addresses table),
//   2. comparison / between operators from the input, bound to the column
//      their keyword resolves to,
//   3. metadata-defined filters discovered in Step 3 ("wealthy customers").

#ifndef SODA_CORE_FILTERS_STEP_H_
#define SODA_CORE_FILTERS_STEP_H_

#include <vector>

#include "core/entry_point.h"
#include "core/graph_utils.h"
#include "core/lookup.h"
#include "core/tables_step.h"
#include "sql/ast.h"
#include "storage/table.h"

namespace soda {

/// One generated filter predicate.
struct GeneratedFilter {
  PhysicalColumnRef column;
  CompareOp op = CompareOp::kEq;
  Value value;

  Predicate ToPredicate() const {
    return Predicate{Expr::MakeColumn(column.table, column.column), op,
                     Expr::MakeLiteral(value)};
  }
};

class FiltersStep {
 public:
  explicit FiltersStep(const Database* db) : db_(db) {}

  /// Produces the filters for one interpretation.
  /// `entries` are the chosen entry points (one per term), parallel to
  /// `tables.entry_columns`.
  Result<std::vector<GeneratedFilter>> Run(
      const std::vector<EntryPoint>& entries,
      const std::vector<OperatorBinding>& operators,
      const TablesOutput& tables) const;

  /// Types a textual literal against the column's declared type
  /// (metadata-stored filter values are text). Exposed for tests.
  Value TypeValue(const PhysicalColumnRef& column,
                  const std::string& text) const;

 private:
  const Database* db_;
};

/// Parses the textual operator of a metadata filter ('>' '>=' '=' '<='
/// '<' 'like'). Unknown text falls back to equality.
CompareOp ParseCompareOp(const std::string& text);

}  // namespace soda

#endif  // SODA_CORE_FILTERS_STEP_H_
