// Tuning knobs of the SODA pipeline.

#ifndef SODA_CORE_CONFIG_H_
#define SODA_CORE_CONFIG_H_

#include <cstddef>

namespace soda {

struct SodaConfig {
  /// Step 2 - Rank and top N: how many interpretations survive ranking.
  size_t top_n = 10;

  /// Result snippets execute with this row limit (the paper shows up to
  /// twenty tuples per candidate query).
  size_t snippet_rows = 20;

  /// Cap on the combinatorial product of the lookup step. The complexity
  /// counter still reports the untruncated product.
  size_t max_interpretations = 1000;

  /// Maximum depth of the metadata-graph traversal in Step 3 - Tables.
  size_t max_traversal_depth = 8;

  /// Ranking weights by entry-point location (paper Step 2: "a keyword
  /// which was found in DBpedia gets a lower score than a keyword which
  /// was found in the domain ontology").
  double weight_domain_ontology = 1.0;
  double weight_conceptual = 0.85;
  double weight_logical = 0.80;
  double weight_physical = 0.75;
  double weight_base_data = 0.70;
  double weight_dbpedia = 0.40;

  /// Step 3: add bridge-table joins between entry-point tables
  /// (Section 4.2.1, "Bridge Tables in Large Schemas").
  bool use_bridge_tables = true;

  /// Step 3: keep only join conditions on a direct path between entry
  /// points (Figure 9). Disabling this is the ablation that includes every
  /// join edge attached to a collected table.
  bool direct_path_only = true;

  /// Execute the generated statements to produce result snippets.
  bool execute_snippets = true;

  /// Compiled closures over the immutable metadata graph: the APSP
  /// join-path matrices (JoinGraph) and the per-node Step-3 traversal
  /// memo (EntryPointClosure). Output is byte-identical either way; off
  /// is the escape hatch that trades the precompute time and memory for
  /// per-query BFS work. Default on.
  bool enable_closures = true;

  /// Drop result candidates whose tables cannot be connected by any join
  /// path (they would execute as cross products). The paper keeps them —
  /// they surface as the 0-precision rows of Table 3 — so this defaults
  /// to false.
  bool drop_disconnected = false;

  /// SodaEngine: width of the worker pool that fans ranked
  /// interpretations out across Steps 3-5. 0 means "use the hardware
  /// concurrency"; 1 pins the engine to the serial pipeline. The ranked
  /// result list is byte-identical at any width.
  size_t num_threads = 0;

  /// SodaEngine: capacity of the LRU result cache, keyed on the
  /// whitespace-normalized query string. 0 disables caching.
  size_t cache_capacity = 128;

  /// ShardedSodaEngine: how many SodaEngine replicas the router fronts.
  /// Each shard gets its own worker pool (num_threads wide; with
  /// num_threads=0 the router divides the hardware concurrency across
  /// shards so the fleet's worker count roughly matches the machine) and
  /// its own LRU cache (cache_capacity entries); a query's cache entry
  /// lives on exactly one shard, picked by a folded hash of the
  /// normalized query string. 0 and 1 both mean a single shard. Plain
  /// SodaEngine ignores this knob.
  size_t num_shards = 1;

  // -------------------------------------------------------------------
  // Router failure isolation (ShardedSodaEngine only). Shards are
  // shared-nothing full replicas, so a sub-batch that fails on its home
  // shard can be re-dispatched to any healthy replica — a cache miss,
  // never a wrong answer. These knobs tune the circuit breaker and the
  // retry loop; fault_injection_test shrinks them for fast sweeps.
  // -------------------------------------------------------------------

  /// Consecutive sub-batch failures before a shard is quarantined
  /// (closed -> quarantined in the per-shard circuit breaker).
  size_t shard_failure_threshold = 3;

  /// Quarantine backoff: first re-probe after this long, doubling per
  /// failed probe up to the cap.
  double shard_backoff_initial_ms = 100.0;
  double shard_backoff_max_ms = 5000.0;

  /// Dispatch attempts per sub-batch beyond the first (each retry
  /// re-routes to the next healthy replica). 0 fails a sub-batch on its
  /// first error.
  size_t shard_retry_limit = 2;

  /// Sleep between dispatch attempts (doubles per retry, capped at the
  /// quarantine cap above). Keeps a flapping shard from being hammered.
  double shard_retry_backoff_ms = 1.0;

  /// Wall-clock budget for one synchronous sub-batch dispatch: an
  /// attempt that has not completed within this deadline is abandoned
  /// (its worker keeps running to completion, but the batch stops
  /// waiting) and retried elsewhere. 0 disables stall detection. Only
  /// the sync SearchAll path enforces it — an async sub-batch registers
  /// streaming callbacks, which cannot be safely abandoned mid-flight.
  double shard_dispatch_deadline_ms = 0.0;

  // -------------------------------------------------------------------
  // Request tracing (common/trace.h). Both knobs apply to the
  // process-global TraceRecorder at Create time when either is set;
  // ranked output is byte-identical with tracing on or off.
  // -------------------------------------------------------------------

  /// Head sampling: every trace_sample_n-th request's span tree is kept
  /// in the trace ring (1 keeps every request). 0 disables tracing
  /// entirely — the ~free default (one branch + relaxed load per span
  /// site). Slow and errored requests are kept regardless of the head
  /// decision while tracing is enabled.
  size_t trace_sample_n = 0;

  /// Requests slower than this always keep their trace and append a
  /// line to the slow-query log, whatever the sampling decision said.
  /// 0 disables the slow-query rules.
  double slow_query_threshold_ms = 0.0;
};

}  // namespace soda

#endif  // SODA_CORE_CONFIG_H_
