// FreshnessManager — automatic freshness propagation from storage
// mutations to live engines.
//
// The paper's warehouses are append-only with historization: base data
// moves under a fixed schema. Two pieces of engine state derive from the
// rows and go stale when they move — the inverted index (Step 1 probes
// it) and the LRU result caches (whole answers, snippets included). The
// FreshnessManager closes the loop:
//
//   Table::Append ──► ChangeLog ──► FreshnessManager::OnChange
//                                        │ (under the exclusive data lock)
//                                        ├─ 1. ApplyBaseDataDelta on every
//                                        │     tracked engine (incremental
//                                        │     postings, all shard replicas)
//                                        └─ 2. InvalidateWhere for exactly
//                                              the affected cache keys
//
// "Affected" is resolved through a reverse dependency map the manager
// builds as answers are cached: engines report every cache insert via
// RecordQuery(key, output), and the manager indexes the key under
//
//   * each of the answer's freshness terms — the folded token vocabulary
//     Step 1 probed (matched phrases, ignored words, aggregation /
//     group-by arguments, string comparison operands), recorded cheaply
//     during lookup via QueryContext; an appended value whose tokens
//     intersect them can change the query's entry points, and
//   * each table referenced by the answer's generated statements; an
//     append to one changes what the snippets show.
//
// Everything else survives: invalidation is keyed, not a cache clear.
// The schema side (metadata graph, join graph, closures) stays immutable
// — only base data moves, exactly the regime the paper assumes.
//
// Counters (booked into the sink handed to the constructor):
// freshness.events, freshness.delta_postings, freshness.keys_invalidated,
// freshness.keys_tracked, freshness.plans_tracked,
// freshness.plans_invalidated.
//
// Threading: OnChange runs under the change log's exclusive data lock;
// RecordQuery runs under engines' shared locks. The manager's own state
// has a private mutex, always acquired after the data lock and never
// while holding a cache lock, so the order data lock → manager → cache
// is global and deadlock-free.
//
// Lifetime: construct after the engines, destroy before them and before
// the database. The destructor unsubscribes from the change log and
// detaches every tracked engine, so the engines may keep serving (and
// caching) after the manager is gone — but QUIESCE serving traffic
// across the destruction itself: the detach is a plain pointer store,
// so a serve concurrent with the destructor races on the hook. Track
// engines before serving traffic — answers cached earlier have no
// recorded dependencies and would survive invalidation stale.

#ifndef SODA_CORE_FRESHNESS_H_
#define SODA_CORE_FRESHNESS_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/metrics.h"
#include "core/pipeline.h"
#include "storage/change_log.h"

namespace soda {

class SodaService;

class FreshnessManager : public ChangeListener {
 public:
  /// Subscribes to `log` (normally Database::change_log()). Counters go
  /// to `sink` when given, else to a private in-memory sink readable via
  /// metrics_snapshot().
  explicit FreshnessManager(ChangeLog* log,
                            std::shared_ptr<MetricsSink> sink = nullptr);
  ~FreshnessManager() override;

  FreshnessManager(const FreshnessManager&) = delete;
  FreshnessManager& operator=(const FreshnessManager&) = delete;

  /// Tracks a service (serial engine or sharded router alike): its index
  /// receives every delta, its cache every keyed invalidation, and the
  /// service reports its cache inserts (and session plans) back here
  /// (set_freshness is called on it). The service must outlive this
  /// manager.
  void Track(SodaService* service);

  /// Records one cached answer's dependencies. Called by tracked engines
  /// under their shared data lock, next to the cache insert; re-recording
  /// a key replaces its dependencies.
  void RecordQuery(const std::string& key, const SearchOutput& output);

  /// Drops one key's recorded dependencies (e.g. after a manual
  /// InvalidateWhere evicted it), so the reverse maps track only keys
  /// that can still be invalidated (bounded by cache size instead of by
  /// every key ever served).
  void Forget(const std::string& key);

  /// Forget for capacity evictions, racing concurrent serves: drops the
  /// key's dependencies unless `still_cached(key)` reports the cache
  /// re-admitted it meanwhile. The check runs under the manager's
  /// mutex, serialized against RecordQuery, which closes the
  /// evict-vs-reinsert race (a re-inserted key must never lose the
  /// dependencies its re-insertion just recorded).
  void ForgetEvicted(const std::string& key,
                     const std::function<bool(const std::string&)>&
                         still_cached);

  /// Registers one session TranslationPlan under its lookup's term
  /// vocabulary, in the same reverse map that invalidates cached
  /// answers. `plan_key` must be unique among plans and cache keys (the
  /// engine uses "plan:<address>", which no normalized query can
  /// collide with); `on_invalidate` fires — under the exclusive data
  /// lock, outside this manager's mutex — when a mutation touches any
  /// of `terms`, and must be cheap and lock-free (the engine's hook
  /// flips an atomic). Re-recording a key replaces hook and terms.
  void RecordPlan(const std::string& plan_key,
                  const std::vector<std::string>& terms,
                  std::function<void()> on_invalidate);

  /// Deregisters one plan (TranslationPlan's destructor calls this).
  void ForgetPlan(const std::string& plan_key);

  /// ChangeListener: applies the event's delta to every tracked engine's
  /// index, then invalidates exactly the dependent cache keys and fires
  /// the hooks of dependent session plans. Runs under the change log's
  /// exclusive data lock.
  void OnChange(const ChangeEvent& event) override;

  /// Lifetime books (also exported as freshness.* counters).
  uint64_t events_seen() const;
  uint64_t keys_invalidated() const;

  /// Keys currently carrying recorded dependencies.
  size_t tracked_keys() const;

  /// Snapshot of the private sink (empty when an external sink was
  /// handed in — snapshot that one instead).
  MetricsSnapshot metrics_snapshot() const;

 private:
  struct Deps {
    std::vector<std::string> terms;   // folded tokens
    std::vector<std::string> tables;  // folded table names
  };

  /// Collects the keys dependent on `event` into `affected`.
  void CollectAffectedLocked(const ChangeEvent& event,
                             std::unordered_set<std::string>* affected);

  /// Drops `key` from the reverse maps using its recorded Deps.
  void ForgetLocked(const std::string& key);

  ChangeLog* log_;
  std::shared_ptr<InMemoryMetricsSink> own_sink_;  // null when external
  std::shared_ptr<MetricsSink> sink_;

  struct Target {
    std::function<size_t(const ChangeEvent&)> apply_delta;
    std::function<size_t(const std::function<bool(const std::string&)>&)>
        invalidate;
    std::function<void()> detach;  // clears the engine's freshness hook
  };

  mutable std::mutex mu_;
  std::vector<Target> targets_;
  std::unordered_map<std::string, Deps> deps_by_key_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      keys_by_term_;
  std::unordered_map<std::string, std::unordered_set<std::string>>
      keys_by_table_;
  /// Session plans, keyed like cache keys in the maps above but resolved
  /// to an invalidation hook instead of a cache eviction. Membership
  /// here is what distinguishes a plan key in an affected set.
  std::unordered_map<std::string, std::function<void()>> plan_hooks_;
  uint64_t events_seen_ = 0;
  uint64_t keys_invalidated_ = 0;
};

}  // namespace soda

#endif  // SODA_CORE_FRESHNESS_H_
