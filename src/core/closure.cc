#include "core/closure.h"

#include <cassert>

namespace soda {

EntryPointClosure::EntryPointClosure(size_t num_nodes) : slots_(num_nodes) {
  for (auto& slot : slots_) {
    slot.store(nullptr, std::memory_order_relaxed);
  }
}

EntryPointClosure::~EntryPointClosure() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

const TraverseClosure* EntryPointClosure::Find(NodeId node) const {
  if (node < 0 || static_cast<size_t>(node) >= slots_.size()) return nullptr;
  return slots_[static_cast<size_t>(node)].load(std::memory_order_acquire);
}

const TraverseClosure* EntryPointClosure::Publish(
    NodeId node, std::unique_ptr<TraverseClosure> value) const {
  assert(node >= 0 && static_cast<size_t>(node) < slots_.size());
  std::atomic<const TraverseClosure*>& slot =
      slots_[static_cast<size_t>(node)];
  const TraverseClosure* expected = nullptr;
  const TraverseClosure* fresh = value.get();
  if (slot.compare_exchange_strong(expected, fresh,
                                   std::memory_order_release,
                                   std::memory_order_acquire)) {
    value.release();  // the slot owns it now
    return fresh;
  }
  // Lost a racing fill: the winner's closure is identical — use it and
  // let `value` free the duplicate.
  return expected;
}

size_t EntryPointClosure::filled() const {
  size_t count = 0;
  for (const auto& slot : slots_) {
    if (slot.load(std::memory_order_relaxed) != nullptr) ++count;
  }
  return count;
}

}  // namespace soda
