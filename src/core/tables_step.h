// Step 3 - Tables: identify tables, joins, inheritance parents, and
// metadata-defined filters/aggregations for one interpretation.
//
// "Starting at every entry point which we discovered in the lookup phase,
//  we recursively follow all the outgoing edges in the metadata graph. At
//  every node we test a set of graph patterns to find tables and joins."
//
// The traversal follows the schema's downward edges (classification,
// implementation, realization, containment, inheritance) up to a depth
// bound and tests the Table / Column / Inheritance-Child / Metadata-Filter
// patterns at every visited node. Join discovery then keeps the join
// conditions on a direct path between the entry-point tables (Figure 9)
// and finally adds bridge-table joins between entry points (Section 4.2.1).

#ifndef SODA_CORE_TABLES_STEP_H_
#define SODA_CORE_TABLES_STEP_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/config.h"
#include "core/entry_point.h"
#include "core/graph_utils.h"
#include "core/join_graph.h"
#include "pattern/matcher.h"
#include "sql/ast.h"

namespace soda {

class EntryPointClosure;   // core/closure.h — the Step-3 traversal memo
struct TraverseClosure;    // core/closure.h — one memoized traversal
class MetricsSink;         // common/metrics.h

/// A filter harvested from a metadata-filter node ("wealthy customers").
struct DiscoveredFilter {
  PhysicalColumnRef column;
  std::string op;     // textual, as stored in the metadata
  std::string value;  // textual; typed later against the column
};

/// An aggregation harvested from a metadata-aggregation node
/// ("trading volume" -> sum(fi_transactions.amount)).
struct DiscoveredAggregation {
  AggFunc func = AggFunc::kSum;
  PhysicalColumnRef column;
};

/// Step 3 output for one interpretation.
struct TablesOutput {
  /// Tables discovered per entry point (same order as the entry points
  /// handed to Run). This is what paper Figure 6 prints.
  std::vector<std::vector<std::string>> tables_per_entry;

  /// Final FROM list: entry tables first, then connector tables added by
  /// join-path discovery and bridge tables. Deduplicated, ordered.
  std::vector<std::string> tables;

  /// Join conditions to emit (direct paths + inheritance + bridges).
  std::vector<JoinEdge> joins;

  /// The physical column each entry point resolves to, when it does
  /// (schema attributes and base-data hits; entities resolve to none).
  std::vector<std::optional<PhysicalColumnRef>> entry_columns;

  /// Metadata-defined filters/aggregations reached from the entry points.
  std::vector<DiscoveredFilter> filters;
  std::vector<DiscoveredAggregation> aggregations;

  /// False when some entry points could not be connected by any join path
  /// (the generated SQL then contains a cross product).
  bool fully_connected = true;
};

class TablesStep {
 public:
  /// `closure` (optional) memoizes the per-node traversal; it must be
  /// built over the same metadata graph as `matcher` and outlive this
  /// step. nullptr disables memoization (SodaConfig::enable_closures).
  TablesStep(const PatternMatcher* matcher, const JoinGraph* join_graph,
             const SodaConfig* config,
             const EntryPointClosure* closure = nullptr)
      : matcher_(matcher), join_graph_(join_graph), config_(config),
        closure_(closure) {}

  /// Runs table + join discovery for the given entry points (one per
  /// query term of the interpretation). When `metrics` is set, the
  /// closure layer books its counters there (closure.traverse_hits,
  /// closure.traverse_misses, closure.path_lookups).
  Result<TablesOutput> Run(const std::vector<EntryPoint>& entries,
                           MetricsSink* metrics = nullptr) const;

  /// The tables reachable from a single metadata node (exposed for the
  /// Figure 6 bench and the schema-explorer example). Served from the
  /// closure when one is attached.
  std::vector<std::string> TablesFromNode(NodeId node) const;

  /// Step 5 keeps statements "reasonable ... considering foreign keys and
  /// inheritance patterns in the schema": when two mutually exclusive
  /// inheritance children would be joined through the same parent row the
  /// statement is unsatisfiable, so an inheritance child is dropped when
  /// (a) a sibling child is also among the tables, (b) no filter, entry
  /// column or aggregation constrains it, and (c) all its joins lead to
  /// one single neighbor (it is a pure leaf). `protected_tables`
  /// (optional, folded names) are treated as constrained no matter what —
  /// the session layer passes its pinned tables so a pin can keep an
  /// otherwise-droppable inheritance child.
  void PruneUnconstrainedSiblings(
      TablesOutput* tables,
      const std::vector<PhysicalColumnRef>& constrained_columns,
      const std::vector<std::string>* protected_tables = nullptr) const;

 private:
  void Traverse(NodeId start, TablesOutput* out,
                std::vector<std::string>* tables) const;

  /// The memoized traversal: Find, or Traverse-into-a-TraverseClosure +
  /// Publish. Returns nullptr when no closure is attached or the node is
  /// out of the closure's range; `hit` reports whether it was served
  /// without traversing.
  const TraverseClosure* ClosureFor(NodeId start, bool* hit) const;

  const PatternMatcher* matcher_;
  const JoinGraph* join_graph_;
  const SodaConfig* config_;
  const EntryPointClosure* closure_;
};

}  // namespace soda

#endif  // SODA_CORE_TABLES_STEP_H_
