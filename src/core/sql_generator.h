// Step 5 - SQL: combine tables, joins, filters, aggregations and group-by
// into reasonable, executable SQL statements (paper Section 3, Step 5).

#ifndef SODA_CORE_SQL_GENERATOR_H_
#define SODA_CORE_SQL_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "core/classification.h"
#include "core/config.h"
#include "core/filters_step.h"
#include "core/input_query.h"
#include "core/join_graph.h"
#include "core/tables_step.h"
#include "pattern/matcher.h"

namespace soda {

class SqlGenerator {
 public:
  SqlGenerator(const PatternMatcher* matcher, const JoinGraph* join_graph,
               const ClassificationIndex* classification,
               const SodaConfig* config)
      : matcher_(matcher),
        join_graph_(join_graph),
        classification_(classification),
        config_(config) {}

  /// Builds the statement for one interpretation. `query` carries the
  /// aggregation / group-by / top-N operators; `tables` and `filters` are
  /// the Step 3/4 outputs. When `metrics` is set and the join graph has
  /// its path closure, join-path lookups made while connecting operator
  /// argument tables are booked as closure.path_lookups.
  Result<SelectStatement> Generate(const InputQuery& query,
                                   const TablesOutput& tables,
                                   const std::vector<GeneratedFilter>& filters,
                                   MetricsSink* metrics = nullptr) const;

 private:
  /// Resolves an operator argument phrase ("amount", "transaction date",
  /// "transactions") to a physical column, or to a table (entities
  /// aggregate as COUNT over their key). Adds the owning table (and a
  /// connecting join path) to `stmt_tables`/`joins` when missing.
  struct ResolvedArgument {
    std::optional<PhysicalColumnRef> column;
    std::optional<std::string> table;  // entity argument
  };
  Result<ResolvedArgument> ResolveArgument(const std::string& phrase) const;

  void EnsureTable(const std::string& table,
                   std::vector<std::string>* tables,
                   std::vector<JoinEdge>* joins,
                   uint64_t* path_lookups) const;

  const PatternMatcher* matcher_;
  const JoinGraph* join_graph_;
  const ClassificationIndex* classification_;
  const SodaConfig* config_;
};

}  // namespace soda

#endif  // SODA_CORE_SQL_GENERATOR_H_
