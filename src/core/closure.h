// Compiled entry-point closures for Step 3 - Tables.
//
// The metadata graph is immutable during a search session, so the result
// of the bounded Step-3 traversal from a given node — the tables,
// metadata filters and aggregations reachable from it — "is the same for
// every query" (the same argument src/core/join_graph.h makes for join
// conditions). TablesStep re-runs that traversal per entry point, per
// interpretation, per query; interpretations inside one combinatorial
// product share term candidates, so the same start nodes recur
// constantly. EntryPointClosure memoizes the traversal per NodeId.
//
// Concurrency model: one fixed-size slot per graph node, lazily filled.
// Readers do a single acquire load — lock-free after fill. Writers
// publish with a compare-exchange; losing a race just means the
// duplicate (identical, the graph is immutable) computation is thrown
// away. One instance is shared by every SodaEngine replica behind a
// ShardedSodaEngine, so shard N's queries warm shard M's entry points.
//
// Sharing contract: slots are keyed by NodeId only, so every sharer
// must traverse the same metadata graph with the same pattern library
// and the same SodaConfig::max_traversal_depth — otherwise the first
// filler's results would silently serve a differently-configured
// instance (see Soda::Create).

#ifndef SODA_CORE_CLOSURE_H_
#define SODA_CORE_CLOSURE_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/tables_step.h"

namespace soda {

/// Everything one Step-3 traversal discovers from a single start node.
struct TraverseClosure {
  std::vector<std::string> tables;
  std::vector<DiscoveredFilter> filters;
  std::vector<DiscoveredAggregation> aggregations;
};

class EntryPointClosure {
 public:
  /// One slot per node of the (immutable) metadata graph.
  explicit EntryPointClosure(size_t num_nodes);
  ~EntryPointClosure();

  EntryPointClosure(const EntryPointClosure&) = delete;
  EntryPointClosure& operator=(const EntryPointClosure&) = delete;

  /// The memoized closure for `node`, or nullptr when not yet filled
  /// (or `node` is out of range). Lock-free.
  const TraverseClosure* Find(NodeId node) const;

  /// Publishes a freshly computed closure for `node` and returns the
  /// canonical pointer: `value` when this thread won the race, the
  /// earlier winner's (identical — the graph is immutable) closure
  /// otherwise. `node` must be in range (callers gate on num_nodes()).
  const TraverseClosure* Publish(NodeId node,
                                 std::unique_ptr<TraverseClosure> value) const;

  size_t num_nodes() const { return slots_.size(); }

  /// Filled slots (for tests and capacity sizing).
  size_t filled() const;

 private:
  // Raw pointers + CAS instead of atomic<shared_ptr> (lock-based in
  // libstdc++): slots are write-once, freed in the destructor.
  mutable std::vector<std::atomic<const TraverseClosure*>> slots_;
};

}  // namespace soda

#endif  // SODA_CORE_CLOSURE_H_
