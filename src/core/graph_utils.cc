#include "core/graph_utils.h"

#include "common/strings.h"
#include "graph/vocab.h"

namespace soda {

TableId TableCatalog::Intern(const std::string& table) {
  std::string key = FoldForMatch(table);
  auto it = id_of_.find(key);
  if (it != id_of_.end()) return it->second;
  TableId id = static_cast<TableId>(id_of_.size());
  id_of_.emplace(std::move(key), id);
  return id;
}

TableId TableCatalog::Find(std::string_view table) const {
  auto it = id_of_.find(FoldForMatch(table));
  return it == id_of_.end() ? kInvalidTableId : it->second;
}

std::optional<std::string> TableNameOf(const MetadataGraph& graph,
                                       NodeId table_node) {
  if (table_node == kInvalidNode) return std::nullopt;
  return graph.FirstText(table_node, vocab::kTablename);
}

std::optional<PhysicalColumnRef> ColumnRefOf(const MetadataGraph& graph,
                                             NodeId column_node) {
  if (column_node == kInvalidNode) return std::nullopt;
  auto column_name = graph.FirstText(column_node, vocab::kColumnname);
  if (!column_name.has_value()) return std::nullopt;
  auto owners = graph.Sources(column_node, vocab::kColumn);
  if (owners.empty()) return std::nullopt;
  auto table_name = TableNameOf(graph, owners[0]);
  if (!table_name.has_value()) return std::nullopt;
  return PhysicalColumnRef{*table_name, *column_name};
}

std::optional<PhysicalColumnRef> ResolvePhysicalColumn(
    const MetadataGraph& graph, NodeId node) {
  if (node == kInvalidNode) return std::nullopt;
  // Physical column?
  auto direct = ColumnRefOf(graph, node);
  if (direct.has_value()) return direct;
  // Logical attribute -> realized_by.
  NodeId realized = graph.FirstTarget(node, vocab::kRealizedBy);
  if (realized != kInvalidNode) return ColumnRefOf(graph, realized);
  // Conceptual attribute -> implemented_by (logical attr) -> realized_by.
  NodeId logical = graph.FirstTarget(node, vocab::kImplementedBy);
  if (logical != kInvalidNode) {
    NodeId column = graph.FirstTarget(logical, vocab::kRealizedBy);
    if (column != kInvalidNode) return ColumnRefOf(graph, column);
  }
  return std::nullopt;
}

}  // namespace soda
