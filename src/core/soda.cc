#include "core/soda.h"

#include <chrono>
#include <shared_mutex>
#include <utility>

namespace soda {

Result<std::unique_ptr<Soda>> Soda::Create(
    const Database* db, const MetadataGraph* graph, PatternLibrary patterns,
    SodaConfig config, std::shared_ptr<EntryPointClosure> shared_closure) {
  // Not make_unique: the constructor is private to force construction
  // through this factory (and its init_status_ check).
  std::unique_ptr<Soda> soda(new Soda(db, graph, std::move(patterns), config,
                                      std::move(shared_closure)));
  SODA_RETURN_NOT_OK(soda->init_status_);
  return soda;
}

Soda::Soda(const Database* db, const MetadataGraph* graph,
           PatternLibrary patterns, SodaConfig config,
           std::shared_ptr<EntryPointClosure> shared_closure)
    : db_(db), graph_(graph), patterns_(std::move(patterns)),
      config_(config) {
  if (db_ != nullptr) inverted_index_.Build(*db_);
  classification_.Build(*graph_, db_ != nullptr ? &inverted_index_ : nullptr);
  matcher_ = std::make_unique<PatternMatcher>(graph_, &patterns_);
  init_status_ = join_graph_.Build(*matcher_, config_.enable_closures);
  if (config_.enable_closures) {
    closure_ = shared_closure != nullptr
                   ? std::move(shared_closure)
                   : std::make_shared<EntryPointClosure>(graph_->num_nodes());
  }
  lookup_step_ = std::make_unique<LookupStep>(&classification_, &config_);
  tables_step_ = std::make_unique<TablesStep>(matcher_.get(), &join_graph_,
                                              &config_, closure_.get());
  filters_step_ = std::make_unique<FiltersStep>(db_);
  generator_ = std::make_unique<SqlGenerator>(
      matcher_.get(), &join_graph_, &classification_, &config_);
  executor_ = std::make_unique<Executor>(db_);

  lookup_stage_ = std::make_unique<LookupStage>(lookup_step_.get());
  rank_stage_ = std::make_unique<RankStage>();
  tables_stage_ = std::make_unique<TablesStage>(tables_step_.get());
  filters_stage_ = std::make_unique<FiltersStage>(filters_step_.get());
  sql_stage_ = std::make_unique<SqlStage>(tables_step_.get(),
                                          generator_.get());
  stages_ = {lookup_stage_.get(), rank_stage_.get(), tables_stage_.get(),
             filters_stage_.get(), sql_stage_.get()};
}

void Soda::ExecuteSnippet(SodaResult* result, MetricsSink* metrics) const {
  SelectStatement limited = result->statement;
  if (!limited.limit.has_value() ||
      *limited.limit > static_cast<int64_t>(config_.snippet_rows)) {
    limited.limit = static_cast<int64_t>(config_.snippet_rows);
  }
  ExecStats stats;
  Result<ResultSet> rs = executor_->Execute(limited, &stats);
  result->executed = rs.ok();
  result->execution_status = rs.status();
  if (rs.ok()) result->snippet = std::move(*rs);
  if (metrics != nullptr && rs.ok()) {
    metrics->Observe("executor.rows", static_cast<double>(stats.rows_output));
    metrics->Observe("executor.tables", static_cast<double>(stats.tables));
  }
}

Result<SearchOutput> Soda::Search(const std::string& query,
                                  MetricsSink* metrics) const {
  // Live-data discipline: hold the database's shared data lock for the
  // whole serve, so concurrent appends (exclusive holders) can never
  // interleave with the pipeline, the index probes or the snippet scan.
  std::shared_lock<std::shared_mutex> data_guard;
  if (db_ != nullptr) data_guard = db_->change_log().ReaderLock();

  auto t_start = std::chrono::steady_clock::now();
  QueryContext ctx(query);
  ctx.config = &config_;
  ctx.metrics = metrics;
  SODA_RETURN_NOT_OK(RunPipeline(stages_, &ctx));
  SearchOutput output = FinalizeOutput(std::move(ctx));

  if (config_.execute_snippets && db_ != nullptr) {
    auto t_exec = std::chrono::steady_clock::now();
    for (SodaResult& result : output.results) {
      ExecuteSnippet(&result, metrics);
      if (metrics != nullptr) {
        metrics->IncrementCounter(
            result.executed ? "snippet.executed" : "snippet.failed", 1);
      }
    }
    output.timings.execute_ms = MsSince(t_exec);
    if (metrics != nullptr) {
      metrics->Observe("stage.execute.ms", output.timings.execute_ms);
    }
  }
  output.timings.wall_ms = MsSince(t_start);
  if (metrics != nullptr) {
    metrics->IncrementCounter("soda.search", 1);
    metrics->Observe("search.wall.ms", output.timings.wall_ms);
  }
  return output;
}

}  // namespace soda
