#include "core/soda.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "common/strings.h"

namespace soda {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  auto elapsed = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(elapsed).count();
}

// Canonical form for deduplication: different entry-point choices often
// collapse to the same logical statement, possibly with different FROM
// order (e.g. the conceptual vs the logical "financial instruments"
// interpretation). Sorting tables and conjuncts makes them compare equal.
std::string CanonicalKey(const SelectStatement& stmt) {
  std::vector<std::string> tables;
  for (const auto& t : stmt.from) tables.push_back(FoldForMatch(t.table));
  std::sort(tables.begin(), tables.end());
  std::vector<std::string> conjuncts;
  for (const auto& p : stmt.where) {
    std::string a = p.lhs.ToString(), b = p.rhs.ToString();
    if (p.op == CompareOp::kEq && b < a) std::swap(a, b);
    conjuncts.push_back(a + CompareOpSymbol(p.op) + b);
  }
  std::sort(conjuncts.begin(), conjuncts.end());
  std::vector<std::string> items;
  for (const auto& item : stmt.items) items.push_back(item.ToString());
  std::sort(items.begin(), items.end());
  std::string key = Join(tables, ",") + "|" + Join(conjuncts, "&") + "|" +
                    Join(items, ",");
  for (const auto& g : stmt.group_by) key += "#" + g.ToString();
  if (stmt.limit.has_value()) key += "^" + std::to_string(*stmt.limit);
  return key;
}

}  // namespace

Soda::Soda(const Database* db, const MetadataGraph* graph,
           PatternLibrary patterns, SodaConfig config)
    : db_(db), graph_(graph), patterns_(std::move(patterns)),
      config_(config) {
  if (db_ != nullptr) inverted_index_.Build(*db_);
  classification_.Build(*graph_, db_ != nullptr ? &inverted_index_ : nullptr);
  matcher_ = std::make_unique<PatternMatcher>(graph_, &patterns_);
  Status st = join_graph_.Build(*matcher_);
  (void)st;  // join harvesting can only fail on malformed patterns,
             // which the pattern-library unit tests rule out
  lookup_step_ = std::make_unique<LookupStep>(&classification_, &config_);
  tables_step_ =
      std::make_unique<TablesStep>(matcher_.get(), &join_graph_, &config_);
  filters_step_ = std::make_unique<FiltersStep>(db_);
  generator_ = std::make_unique<SqlGenerator>(
      matcher_.get(), &join_graph_, &classification_, &config_);
  executor_ = std::make_unique<Executor>(db_);
}

Result<SearchOutput> Soda::Search(const std::string& query) const {
  SearchOutput output;

  // ---- parse + Step 1: lookup -------------------------------------------
  auto t0 = std::chrono::steady_clock::now();
  SODA_ASSIGN_OR_RETURN(output.parsed, ParseInputQuery(query));
  SODA_ASSIGN_OR_RETURN(LookupOutput lookup, lookup_step_->Run(output.parsed));
  output.complexity = lookup.complexity;
  output.ignored_words = lookup.ignored_words;
  output.timings.lookup_ms = MsSince(t0);

  // ---- Step 2: rank and top N ---------------------------------------------
  t0 = std::chrono::steady_clock::now();
  std::vector<Interpretation> ranked = RankAndTopN(lookup, config_);
  output.timings.rank_ms = MsSince(t0);

  // ---- Steps 3-5 per interpretation ---------------------------------------
  std::set<std::string> seen_sql;
  for (const Interpretation& interpretation : ranked) {
    // Materialize the chosen entry points (skip empty terms).
    std::vector<EntryPoint> entries;
    std::vector<OperatorBinding> operators = lookup.operators;
    std::string explanation;
    {
      // Terms with no candidates do not contribute an entry point; remap
      // the operator bindings to the compacted indexes.
      std::vector<size_t> remap(lookup.terms.size(), SIZE_MAX);
      for (size_t t = 0; t < lookup.terms.size(); ++t) {
        const LookupTerm& term = lookup.terms[t];
        if (term.candidates.empty()) continue;
        remap[t] = entries.size();
        const EntryPoint& ep = term.candidates[interpretation.choice[t]];
        entries.push_back(ep);
        if (!explanation.empty()) explanation += "; ";
        explanation += term.phrase + " @ " +
                       std::string(MetadataLayerName(ep.layer));
      }
      std::vector<OperatorBinding> remapped;
      for (OperatorBinding binding : operators) {
        if (binding.term_index < remap.size() &&
            remap[binding.term_index] != SIZE_MAX) {
          binding.term_index = remap[binding.term_index];
          remapped.push_back(binding);
        }
      }
      operators = std::move(remapped);
    }
    if (entries.empty() && !output.parsed.HasAggregation()) continue;

    auto t_tables = std::chrono::steady_clock::now();
    Result<TablesOutput> tables = tables_step_->Run(entries);
    output.timings.tables_ms += MsSince(t_tables);
    if (!tables.ok()) continue;

    auto t_filters = std::chrono::steady_clock::now();
    Result<std::vector<GeneratedFilter>> filters =
        filters_step_->Run(entries, operators, *tables);
    output.timings.filters_ms += MsSince(t_filters);
    if (!filters.ok()) continue;

    // Step 5 precondition: drop mutually exclusive inheritance siblings
    // that no filter or column constrains (see TablesStep).
    {
      std::vector<PhysicalColumnRef> constrained;
      for (const GeneratedFilter& filter : *filters) {
        constrained.push_back(filter.column);
      }
      for (const auto& column : tables->entry_columns) {
        if (column.has_value()) constrained.push_back(*column);
      }
      for (const auto& aggregation : tables->aggregations) {
        constrained.push_back(aggregation.column);
      }
      tables_step_->PruneUnconstrainedSiblings(&tables.value(), constrained);
    }

    auto t_sql = std::chrono::steady_clock::now();
    Result<SelectStatement> stmt =
        generator_->Generate(output.parsed, *tables, *filters);
    output.timings.sql_ms += MsSince(t_sql);
    if (!stmt.ok()) continue;

    if (config_.drop_disconnected && !tables->fully_connected) continue;

    SodaResult result;
    result.statement = std::move(*stmt);
    result.sql = result.statement.ToSql();
    result.score = interpretation.score;
    result.explanation = std::move(explanation);
    result.fully_connected = tables->fully_connected;

    if (!seen_sql.insert(CanonicalKey(result.statement)).second) continue;

    output.results.push_back(std::move(result));
  }

  // ---- snippets -------------------------------------------------------------
  if (config_.execute_snippets && db_ != nullptr) {
    auto t_exec = std::chrono::steady_clock::now();
    for (SodaResult& result : output.results) {
      SelectStatement limited = result.statement;
      if (!limited.limit.has_value() ||
          *limited.limit > static_cast<int64_t>(config_.snippet_rows)) {
        limited.limit = static_cast<int64_t>(config_.snippet_rows);
      }
      Result<ResultSet> rs = executor_->Execute(limited);
      result.executed = rs.ok();
      result.execution_status = rs.status();
      if (rs.ok()) result.snippet = std::move(*rs);
    }
    output.timings.execute_ms = MsSince(t_exec);
  }

  return output;
}

}  // namespace soda
