#include "core/filters_step.h"

namespace soda {

CompareOp ParseCompareOp(const std::string& text) {
  if (text == ">") return CompareOp::kGt;
  if (text == ">=") return CompareOp::kGe;
  if (text == "<") return CompareOp::kLt;
  if (text == "<=") return CompareOp::kLe;
  if (text == "<>" || text == "!=") return CompareOp::kNe;
  if (text == "like") return CompareOp::kLike;
  return CompareOp::kEq;
}

Value FiltersStep::TypeValue(const PhysicalColumnRef& column,
                             const std::string& text) const {
  ValueType type = ValueType::kString;
  const Table* table = db_ != nullptr ? db_->FindTable(column.table) : nullptr;
  if (table != nullptr) {
    int index = table->ColumnIndex(column.column);
    if (index >= 0) type = table->columns()[static_cast<size_t>(index)].type;
  }
  switch (type) {
    case ValueType::kInt64:
      try {
        return Value::Int(std::stoll(text));
      } catch (...) {
        return Value::Str(text);
      }
    case ValueType::kDouble:
      try {
        return Value::Real(std::stod(text));
      } catch (...) {
        return Value::Str(text);
      }
    case ValueType::kDate: {
      auto date = Date::Parse(text);
      if (date.ok()) return Value::DateV(*date);
      return Value::Str(text);
    }
    case ValueType::kBool:
      return Value::Bool(text == "true" || text == "1");
    default:
      return Value::Str(text);
  }
}

Result<std::vector<GeneratedFilter>> FiltersStep::Run(
    const std::vector<EntryPoint>& entries,
    const std::vector<OperatorBinding>& operators,
    const TablesOutput& tables) const {
  std::vector<GeneratedFilter> filters;

  // Which terms carry an operator (they filter with that operator instead
  // of the plain base-data equality).
  std::vector<bool> has_operator(entries.size(), false);
  for (const OperatorBinding& binding : operators) {
    if (binding.term_index < has_operator.size()) {
      has_operator[binding.term_index] = true;
    }
  }

  // 1. Base-data entry points become equality filters.
  for (size_t i = 0; i < entries.size(); ++i) {
    const EntryPoint& entry = entries[i];
    if (entry.kind != EntryPoint::Kind::kBaseData) continue;
    if (has_operator[i]) continue;  // the operator binding covers it
    GeneratedFilter filter;
    filter.column = PhysicalColumnRef{entry.table, entry.column};
    filter.op = CompareOp::kEq;
    filter.value = Value::Str(entry.value);
    filters.push_back(std::move(filter));
  }

  // 2. Input operators attach to the column their keyword resolves to.
  for (const OperatorBinding& binding : operators) {
    if (binding.term_index >= tables.entry_columns.size()) continue;
    const auto& column = tables.entry_columns[binding.term_index];
    if (!column.has_value()) {
      return Status::InvalidArgument(
          "comparison operator bound to a keyword that does not resolve "
          "to a column");
    }
    if (binding.is_between) {
      GeneratedFilter low;
      low.column = *column;
      low.op = CompareOp::kGe;
      low.value = binding.literal;
      filters.push_back(std::move(low));
      GeneratedFilter high;
      high.column = *column;
      high.op = CompareOp::kLe;
      high.value = binding.literal_high;
      filters.push_back(std::move(high));
    } else {
      GeneratedFilter filter;
      filter.column = *column;
      filter.op = binding.op;
      filter.value = binding.literal;
      filters.push_back(std::move(filter));
    }
  }

  // 3. Metadata-defined filters discovered during the traversal.
  for (const DiscoveredFilter& discovered : tables.filters) {
    GeneratedFilter filter;
    filter.column = discovered.column;
    filter.op = ParseCompareOp(discovered.op);
    filter.value = TypeValue(discovered.column, discovered.value);
    filters.push_back(std::move(filter));
  }

  return filters;
}

}  // namespace soda
