#include "baselines/baseline.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "common/strings.h"

namespace soda {

const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kBaseData:
      return "Base data";
    case QueryType::kSchema:
      return "Schema";
    case QueryType::kInheritance:
      return "Inheritance";
    case QueryType::kDomainOntology:
      return "Domain ontology";
    case QueryType::kPredicates:
      return "Predicates";
    case QueryType::kAggregates:
      return "Aggregates";
  }
  return "?";
}

const char* SupportLevelSymbol(SupportLevel level) {
  switch (level) {
    case SupportLevel::kYes:
      return "X";
    case SupportLevel::kPartial:
      return "(X)";
    case SupportLevel::kNoInPractice:
      return "(NO)";
    case SupportLevel::kNo:
      return "NO";
  }
  return "?";
}

namespace {

std::string Key(const std::string& table) { return FoldForMatch(table); }

std::map<std::string, std::vector<JoinEdge>> BuildAdjacency(
    const std::vector<JoinEdge>& foreign_keys) {
  std::map<std::string, std::vector<JoinEdge>> adjacency;
  for (const JoinEdge& edge : foreign_keys) {
    adjacency[Key(edge.from.table)].push_back(edge);
    adjacency[Key(edge.to.table)].push_back(edge);
  }
  return adjacency;
}

}  // namespace

bool ConnectByForeignKeys(const std::vector<JoinEdge>& foreign_keys,
                          const std::vector<std::string>& tables,
                          bool directed,
                          std::vector<JoinEdge>* joins,
                          std::vector<std::string>* all_tables) {
  auto adjacency = BuildAdjacency(foreign_keys);
  auto push_table = [&](const std::string& table) {
    for (const auto& existing : *all_tables) {
      if (EqualsFolded(existing, table)) return;
    }
    all_tables->push_back(table);
  };
  auto push_join = [&](const JoinEdge& edge) {
    for (const auto& existing : *joins) {
      if ((existing.from == edge.from && existing.to == edge.to) ||
          (existing.from == edge.to && existing.to == edge.from)) {
        return;
      }
    }
    joins->push_back(edge);
  };
  for (const auto& table : tables) push_table(table);

  for (size_t i = 0; i + 1 < tables.size(); ++i) {
    // BFS from tables[i] to tables[i+1].
    const std::string source = Key(tables[i]);
    const std::string target = Key(tables[i + 1]);
    if (source == target) continue;
    std::map<std::string, std::pair<std::string, JoinEdge>> parent;
    std::set<std::string> visited{source};
    std::deque<std::string> queue{source};
    bool found = false;
    while (!queue.empty() && !found) {
      std::string current = queue.front();
      queue.pop_front();
      auto it = adjacency.find(current);
      if (it == adjacency.end()) continue;
      for (const JoinEdge& edge : it->second) {
        std::string next;
        if (Key(edge.from.table) == current) {
          next = Key(edge.to.table);  // fk -> pk, always allowed
        } else if (!directed) {
          next = Key(edge.from.table);
        } else {
          continue;  // directed mode: never traverse pk -> fk
        }
        if (visited.count(next) > 0) continue;
        visited.insert(next);
        parent[next] = {current, edge};
        if (next == target) {
          found = true;
          break;
        }
        queue.push_back(next);
      }
    }
    if (!found) return false;
    std::string cursor = target;
    while (parent.count(cursor) > 0) {
      const auto& [prev, edge] = parent.at(cursor);
      push_join(edge);
      push_table(edge.from.table);
      push_table(edge.to.table);
      cursor = prev;
    }
  }
  return true;
}

bool ForeignKeyComponentHasCycle(const std::vector<JoinEdge>& foreign_keys,
                                 const std::string& table) {
  auto adjacency = BuildAdjacency(foreign_keys);
  // Undirected cycle detection by BFS with parent-edge tracking. Parallel
  // edges between two tables (e.g. two foreign keys onto the same target)
  // count as a cycle, as does revisiting a visited node.
  std::string source = Key(table);
  if (adjacency.count(source) == 0) return false;
  std::set<std::string> visited{source};
  // Track the edge used to enter each node, to skip the immediate parent.
  std::deque<std::pair<std::string, const JoinEdge*>> queue;
  queue.emplace_back(source, nullptr);
  while (!queue.empty()) {
    auto [current, via] = queue.front();
    queue.pop_front();
    auto it = adjacency.find(current);
    if (it == adjacency.end()) continue;
    for (const JoinEdge& edge : it->second) {
      if (via != nullptr && &edge == via) continue;
      std::string next = Key(edge.from.table) == current
                             ? Key(edge.to.table)
                             : Key(edge.from.table);
      if (next == current) return true;  // self-loop
      if (via != nullptr) {
        // Same unordered pair as the entering edge but a different edge
        // object: parallel edge -> cycle.
        std::string via_other = Key(via->from.table) == current
                                    ? Key(via->to.table)
                                    : Key(via->from.table);
        if (next == via_other &&
            !(edge.from == via->from && edge.to == via->to)) {
          return true;
        }
        if (next == via_other) continue;  // the edge we came through
      }
      if (visited.count(next) > 0) return true;
      visited.insert(next);
      queue.emplace_back(next, &edge);
    }
  }
  return false;
}

}  // namespace soda
