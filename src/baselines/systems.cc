// The five baseline systems (see baselines/baseline.h).

#include <algorithm>

#include "baselines/baseline.h"
#include "common/strings.h"
#include "core/input_query.h"
#include "text/tokenizer.h"

namespace soda {

namespace {

// ---------------------------------------------------------------------------
// shared translation helpers
// ---------------------------------------------------------------------------

// A matched keyword: either a base-data value hit or a schema object.
struct Match {
  bool is_value = false;
  std::string table;
  std::string column;  // for value hits
  std::string value;
};

// Greedy longest-phrase segmentation against the inverted index only.
std::vector<std::string> SegmentAgainstBaseData(
    const InvertedIndex& index, const std::vector<std::string>& words) {
  std::vector<std::string> phrases;
  size_t i = 0;
  while (i < words.size()) {
    bool matched = false;
    for (size_t len = words.size() - i; len >= 1; --len) {
      std::string phrase;
      for (size_t k = 0; k < len; ++k) {
        if (k > 0) phrase += ' ';
        phrase += words[i + k];
      }
      if (!index.LookupPhrase(phrase).empty()) {
        phrases.push_back(phrase);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) ++i;  // unmatched word: all of these systems drop it
  }
  return phrases;
}

SelectStatement BuildSelectStar(const std::vector<std::string>& tables,
                                const std::vector<JoinEdge>& joins,
                                const std::vector<Match>& value_matches) {
  SelectStatement stmt;
  stmt.items.push_back(SelectItem{Expr::MakeStar(), ""});
  for (const auto& table : tables) {
    stmt.from.push_back(TableRef{table, ""});
  }
  for (const JoinEdge& join : joins) {
    stmt.where.push_back(
        Predicate{Expr::MakeColumn(join.from.table, join.from.column),
                  CompareOp::kEq,
                  Expr::MakeColumn(join.to.table, join.to.column)});
  }
  for (const Match& match : value_matches) {
    if (!match.is_value) continue;
    stmt.where.push_back(
        Predicate{Expr::MakeColumn(match.table, match.column),
                  CompareOp::kEq,
                  Expr::MakeLiteral(Value::Str(match.value))});
  }
  return stmt;
}

// ---------------------------------------------------------------------------
// DBExplorer (Agrawal et al., ICDE 2002)
// ---------------------------------------------------------------------------

class DbExplorer : public KeywordSearchSystem {
 public:
  explicit DbExplorer(const BaselineContext* context) : context_(context) {}

  std::string name() const override { return "DBExplorer"; }

  SupportLevel DeclaredSupport(QueryType type) const override {
    switch (type) {
      case QueryType::kBaseData:
        return SupportLevel::kPartial;  // "(X)": breaks on schema cycles
      default:
        return SupportLevel::kNo;
    }
  }

  Result<BaselineAnswer> Translate(const std::string& query) const override {
    BaselineAnswer answer;
    std::vector<std::string> phrases = SegmentAgainstBaseData(
        *context_->inverted_index, Tokenize(query));
    if (phrases.empty()) {
      answer.failure_reason =
          "no keyword occurs in the base data (DBExplorer has no schema "
          "matching, ontology, predicate or aggregate support)";
      return answer;
    }
    std::vector<Match> matches;
    std::vector<std::string> tables;
    for (const auto& phrase : phrases) {
      auto postings = context_->inverted_index->LookupPhrase(phrase);
      const ValuePosting& posting = postings.front();
      matches.push_back(
          Match{true, posting.table, posting.column, posting.value});
      tables.push_back(posting.table);
    }
    // The published join-tree enumeration assumes an acyclic schema graph.
    for (const auto& table : tables) {
      if (ForeignKeyComponentHasCycle(context_->foreign_keys, table)) {
        answer.failure_reason =
            "foreign-key graph around '" + table +
            "' contains cycles; DBExplorer's join trees are undefined";
        return answer;
      }
    }
    std::vector<JoinEdge> joins;
    std::vector<std::string> all_tables;
    if (!ConnectByForeignKeys(context_->foreign_keys, tables,
                              /*directed=*/false, &joins, &all_tables)) {
      answer.failure_reason = "keyword tables cannot be connected";
      return answer;
    }
    answer.answered = true;
    answer.statements.push_back(BuildSelectStar(all_tables, joins, matches));
    return answer;
  }

 private:
  const BaselineContext* context_;
};

// ---------------------------------------------------------------------------
// DISCOVER (Hristidis & Papakonstantinou, VLDB 2002)
// ---------------------------------------------------------------------------

class Discover : public KeywordSearchSystem {
 public:
  explicit Discover(const BaselineContext* context) : context_(context) {}

  std::string name() const override { return "DISCOVER"; }

  SupportLevel DeclaredSupport(QueryType type) const override {
    switch (type) {
      case QueryType::kBaseData:
        return SupportLevel::kPartial;  // same cycle caveat as DBExplorer
      default:
        return SupportLevel::kNo;
    }
  }

  Result<BaselineAnswer> Translate(const std::string& query) const override {
    BaselineAnswer answer;
    std::vector<std::string> phrases = SegmentAgainstBaseData(
        *context_->inverted_index, Tokenize(query));
    if (phrases.empty()) {
      answer.failure_reason = "no keyword occurs in the base data";
      return answer;
    }
    // Candidate networks: one statement per combination of value hits,
    // capped. Cycles invalidate the candidate-network enumeration.
    std::vector<std::vector<ValuePosting>> hits;
    for (const auto& phrase : phrases) {
      hits.push_back(context_->inverted_index->LookupPhrase(phrase));
    }
    constexpr size_t kMaxNetworks = 8;
    std::vector<size_t> cursor(hits.size(), 0);
    while (answer.statements.size() < kMaxNetworks) {
      std::vector<Match> matches;
      std::vector<std::string> tables;
      for (size_t i = 0; i < hits.size(); ++i) {
        const ValuePosting& posting = hits[i][cursor[i]];
        matches.push_back(
            Match{true, posting.table, posting.column, posting.value});
        tables.push_back(posting.table);
      }
      bool cyclic = false;
      for (const auto& table : tables) {
        if (ForeignKeyComponentHasCycle(context_->foreign_keys, table)) {
          cyclic = true;
          break;
        }
      }
      if (cyclic) {
        answer.failure_reason =
            "candidate network touches a cyclic schema region";
        return answer;
      }
      std::vector<JoinEdge> joins;
      std::vector<std::string> all_tables;
      if (ConnectByForeignKeys(context_->foreign_keys, tables,
                               /*directed=*/false, &joins, &all_tables)) {
        answer.statements.push_back(
            BuildSelectStar(all_tables, joins, matches));
      }
      size_t k = 0;
      while (k < cursor.size() && ++cursor[k] == hits[k].size()) {
        cursor[k] = 0;
        ++k;
      }
      if (k == cursor.size()) break;
    }
    answer.answered = !answer.statements.empty();
    if (!answer.answered) {
      answer.failure_reason = "no connected candidate network";
    }
    return answer;
  }

 private:
  const BaselineContext* context_;
};

// ---------------------------------------------------------------------------
// BANKS (Bhalotia et al., ICDE 2002)
// ---------------------------------------------------------------------------

class Banks : public KeywordSearchSystem {
 public:
  explicit Banks(const BaselineContext* context) : context_(context) {}

  std::string name() const override { return "BANKS"; }

  SupportLevel DeclaredSupport(QueryType type) const override {
    switch (type) {
      case QueryType::kBaseData:
      case QueryType::kSchema:
        return SupportLevel::kYes;
      default:
        return SupportLevel::kNo;
    }
  }

  Result<BaselineAnswer> Translate(const std::string& query) const override {
    BaselineAnswer answer;
    // BANKS matches base data and relation/attribute names, nothing else.
    std::vector<std::string> ignored;
    std::vector<std::string> phrases =
        context_->classification->SegmentKeywords(Tokenize(query), &ignored);
    std::vector<Match> matches;
    std::vector<std::string> tables;
    for (const auto& phrase : phrases) {
      bool found = false;
      for (const EntryPoint& candidate :
           context_->classification->Lookup(phrase)) {
        if (candidate.kind == EntryPoint::Kind::kBaseData) {
          matches.push_back(Match{true, candidate.table, candidate.column,
                                  candidate.value});
          tables.push_back(candidate.table);
          found = true;
          break;
        }
        // Physical schema names only — BANKS knows nothing of conceptual
        // models or ontologies.
        if (candidate.layer == MetadataLayer::kPhysicalSchema) {
          std::string table = candidate.label;
          if (context_->db->FindTable(table) != nullptr) {
            matches.push_back(Match{false, table, "", ""});
            tables.push_back(table);
            found = true;
            break;
          }
        }
      }
      (void)found;
    }
    if (tables.empty()) {
      answer.failure_reason =
          "no keyword matches base data or physical schema names";
      return answer;
    }
    // Steiner-tree style connection; cycles are no problem for BANKS.
    std::vector<JoinEdge> joins;
    std::vector<std::string> all_tables;
    if (!ConnectByForeignKeys(context_->foreign_keys, tables,
                              /*directed=*/false, &joins, &all_tables)) {
      answer.failure_reason = "keyword nodes lie in disconnected components";
      return answer;
    }
    answer.answered = true;
    answer.statements.push_back(BuildSelectStar(all_tables, joins, matches));
    return answer;
  }

 private:
  const BaselineContext* context_;
};

// ---------------------------------------------------------------------------
// SQAK (Tata & Lohman, SIGMOD 2008)
// ---------------------------------------------------------------------------

class Sqak : public KeywordSearchSystem {
 public:
  explicit Sqak(const BaselineContext* context) : context_(context) {}

  std::string name() const override { return "SQAK"; }

  SupportLevel DeclaredSupport(QueryType type) const override {
    switch (type) {
      case QueryType::kAggregates:
        return SupportLevel::kYes;
      default:
        return SupportLevel::kNo;  // including simple keyword queries
    }
  }

  Result<BaselineAnswer> Translate(const std::string& query) const override {
    BaselineAnswer answer;
    SODA_ASSIGN_OR_RETURN(InputQuery parsed, ParseInputQuery(query));
    if (!parsed.HasAggregation()) {
      answer.failure_reason =
          "query does not match SQAK's SELECT-PROJECT-JOIN-GROUP-BY "
          "pattern (no aggregation function)";
      return answer;
    }
    SelectStatement stmt;
    std::vector<std::string> tables;
    auto resolve_column =
        [&](const std::string& phrase) -> std::optional<PhysicalColumnRef> {
      for (const EntryPoint& candidate :
           context_->metadata_only_classification->Lookup(phrase)) {
        // SQAK matches schema terms (table/column names) directly.
        if (candidate.layer != MetadataLayer::kPhysicalSchema &&
            candidate.layer != MetadataLayer::kLogicalSchema) {
          continue;
        }
        auto column =
            ResolvePhysicalColumn(*context_->graph_for_resolution, candidate.node);
        if (column.has_value()) return column;
      }
      return std::nullopt;
    };
    for (const InputElement& element : parsed.elements) {
      if (element.kind == InputElement::Kind::kAggregation) {
        if (element.agg_argument.empty()) {
          stmt.items.push_back(SelectItem{Expr::MakeCountStar(), ""});
          continue;
        }
        auto column = resolve_column(element.agg_argument);
        if (!column.has_value()) {
          answer.failure_reason = "aggregation attribute '" +
                                  element.agg_argument +
                                  "' does not match a schema term";
          return answer;
        }
        stmt.items.push_back(SelectItem{
            Expr::MakeAggregate(element.agg,
                                ColumnRef{column->table, column->column}),
            ""});
        tables.push_back(column->table);
      } else if (element.kind == InputElement::Kind::kGroupBy) {
        for (const auto& phrase : element.group_by_phrases) {
          auto column = resolve_column(phrase);
          if (!column.has_value()) {
            answer.failure_reason = "group-by attribute '" + phrase +
                                    "' does not match a schema term";
            return answer;
          }
          stmt.items.push_back(SelectItem{
              Expr::MakeColumn(column->table, column->column), ""});
          stmt.group_by.push_back(ColumnRef{column->table, column->column});
          tables.push_back(column->table);
        }
      }
      // Plain keywords: SQAK maps them to schema terms only; base-data
      // values and business terms are out of scope — ignored here.
    }
    if (tables.empty()) {
      answer.failure_reason = "no aggregation attribute resolved";
      return answer;
    }
    std::vector<JoinEdge> joins;
    std::vector<std::string> all_tables;
    // SQAK computes join paths that respect foreign-key direction.
    if (!ConnectByForeignKeys(context_->foreign_keys, tables,
                              /*directed=*/true, &joins, &all_tables)) {
      answer.failure_reason =
          "tables cannot be connected respecting foreign-key direction";
      return answer;
    }
    for (const auto& table : all_tables) {
      bool present = false;
      for (const auto& ref : stmt.from) {
        if (EqualsFolded(ref.table, table)) present = true;
      }
      if (!present) stmt.from.push_back(TableRef{table, ""});
    }
    for (const JoinEdge& join : joins) {
      stmt.where.push_back(
          Predicate{Expr::MakeColumn(join.from.table, join.from.column),
                    CompareOp::kEq,
                    Expr::MakeColumn(join.to.table, join.to.column)});
    }
    answer.answered = true;
    answer.statements.push_back(std::move(stmt));
    return answer;
  }

 private:
  const BaselineContext* context_;
};

// ---------------------------------------------------------------------------
// Keymantic (Bergamaschi et al., SIGMOD 2011)
// ---------------------------------------------------------------------------

class Keymantic : public KeywordSearchSystem {
 public:
  explicit Keymantic(const BaselineContext* context) : context_(context) {}

  std::string name() const override { return "Keymantic"; }

  SupportLevel DeclaredSupport(QueryType type) const override {
    switch (type) {
      case QueryType::kBaseData:
        // "(NO)": in principle metadata-based matching could route value
        // keywords, but with thousands of columns it cannot pick the
        // right one.
        return SupportLevel::kNoInPractice;
      case QueryType::kSchema:
        return SupportLevel::kYes;
      case QueryType::kDomainOntology:
        return SupportLevel::kPartial;  // synonym/homonym handling
      default:
        return SupportLevel::kNo;
    }
  }

  Result<BaselineAnswer> Translate(const std::string& query) const override {
    BaselineAnswer answer;
    // Hidden-Web setting: only metadata is available.
    const ClassificationIndex& metadata =
        *context_->metadata_only_classification;
    std::vector<std::string> ignored;
    std::vector<std::string> phrases =
        metadata.SegmentKeywords(Tokenize(query), &ignored);

    const MetadataGraph& graph = *context_->graph_for_resolution;
    std::vector<std::string> tables;
    for (const auto& phrase : phrases) {
      for (const EntryPoint& candidate : metadata.Lookup(phrase)) {
        auto column = ResolvePhysicalColumn(graph, candidate.node);
        if (column.has_value()) {
          tables.push_back(column->table);
          break;
        }
        // Entity terms: walk the layer mapping down to a physical table
        // (Keymantic matches schema terms at any abstraction level).
        NodeId node = candidate.node;
        bool resolved = false;
        for (int hops = 0; hops < 4 && node != kInvalidNode; ++hops) {
          auto table_name = TableNameOf(graph, node);
          if (table_name.has_value()) {
            tables.push_back(*table_name);
            resolved = true;
            break;
          }
          node = graph.FirstTarget(node, "implemented_by");
        }
        if (resolved) break;
      }
    }
    if (!ignored.empty()) {
      // Unmatched keywords must be data values; Keymantic would have to
      // guess the column. Beyond a few hundred columns the assignment
      // problem has no usable signal (the paper's observation on the
      // Credit Suisse schema).
      if (context_->schema_columns > 500) {
        answer.failure_reason =
            "value keyword(s) '" + Join(ignored, " ") +
            "' cannot be assigned to a column among " +
            std::to_string(context_->schema_columns) + " candidates";
        return answer;
      }
    }
    if (tables.empty()) {
      answer.failure_reason = "no keyword matches the schema metadata";
      return answer;
    }
    std::vector<JoinEdge> joins;
    std::vector<std::string> all_tables;
    if (!ConnectByForeignKeys(context_->foreign_keys, tables,
                              /*directed=*/false, &joins, &all_tables)) {
      answer.failure_reason = "matched tables cannot be connected";
      return answer;
    }
    answer.answered = true;
    answer.statements.push_back(BuildSelectStar(all_tables, joins, {}));
    return answer;
  }

 private:
  const BaselineContext* context_;
};

}  // namespace

std::vector<std::unique_ptr<KeywordSearchSystem>> MakeBaselines(
    const BaselineContext* context) {
  std::vector<std::unique_ptr<KeywordSearchSystem>> systems;
  systems.push_back(std::make_unique<DbExplorer>(context));
  systems.push_back(std::make_unique<Discover>(context));
  systems.push_back(std::make_unique<Banks>(context));
  systems.push_back(std::make_unique<Sqak>(context));
  systems.push_back(std::make_unique<Keymantic>(context));
  return systems;
}

}  // namespace soda
