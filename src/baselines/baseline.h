// Baseline keyword-search systems for the qualitative comparison of paper
// Table 5 (Section 6.2).
//
// The paper compares SODA against DBExplorer, DISCOVER, BANKS, SQAK and
// Keymantic. None of those systems is available as source, so each is
// re-implemented here over the same substrate (storage, inverted index,
// key/foreign-key relationships, schema labels), deliberately constrained
// to the capability envelope its publication describes:
//
//   DBExplorer  — inverted symbol table on base data, join trees over
//                 key/foreign-key relationships, breaks on schema cycles.
//   DISCOVER    — candidate networks over base-data hits, same cycle
//                 limitation.
//   BANKS       — base data + schema names, Steiner-tree style connection
//                 (cycles are fine: it is a graph algorithm).
//   SQAK        — aggregate queries only (SELECT-PROJECT-JOIN-GROUP-BY
//                 pattern); respects foreign-key direction.
//   Keymantic   — metadata only (Hidden-Web setting: no inverted index);
//                 synonym matching; column selection degrades on schemas
//                 with thousands of columns.

#ifndef SODA_BASELINES_BASELINE_H_
#define SODA_BASELINES_BASELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/classification.h"
#include "core/join_graph.h"
#include "sql/ast.h"
#include "storage/table.h"
#include "text/inverted_index.h"

namespace soda {

/// The six query types of paper Table 5.
enum class QueryType {
  kBaseData = 0,
  kSchema,
  kInheritance,
  kDomainOntology,
  kPredicates,
  kAggregates,
};

const char* QueryTypeName(QueryType type);

/// Support level, rendered as "X", "(X)", "(NO)", "NO". "(X)" means
/// supported with caveats; "(NO)" means possible in principle but failing
/// in practice (Keymantic's column assignment on wide schemas).
enum class SupportLevel { kYes, kPartial, kNoInPractice, kNo };

const char* SupportLevelSymbol(SupportLevel level);

/// What a baseline produced for one query.
struct BaselineAnswer {
  bool answered = false;         // produced at least one statement
  std::string failure_reason;    // why not (capability gap, cycle, ...)
  std::vector<SelectStatement> statements;
};

/// Shared substrate handed to every baseline.
struct BaselineContext {
  const Database* db = nullptr;
  const InvertedIndex* inverted_index = nullptr;
  /// All key/foreign-key relationships of the physical schema.
  std::vector<JoinEdge> foreign_keys;
  /// Schema labels + base data (as SODA sees them).
  const ClassificationIndex* classification = nullptr;
  /// Schema labels only (no base data) — the Keymantic setting.
  const ClassificationIndex* metadata_only_classification = nullptr;
  /// Graph used to resolve schema terms to physical columns (SQAK and
  /// Keymantic match schema names; resolution is a plain name lookup).
  const MetadataGraph* graph_for_resolution = nullptr;
  /// Total physical column count (Keymantic's scale problem).
  size_t schema_columns = 0;
};

class KeywordSearchSystem {
 public:
  virtual ~KeywordSearchSystem() = default;

  virtual std::string name() const = 0;

  /// The capability the system's publication claims for this query type
  /// (the paper's Table 5 row).
  virtual SupportLevel DeclaredSupport(QueryType type) const = 0;

  /// Attempts to translate the keyword query.
  virtual Result<BaselineAnswer> Translate(const std::string& query) const = 0;
};

/// Instantiates all five baselines over a shared context. The context must
/// outlive the returned systems.
std::vector<std::unique_ptr<KeywordSearchSystem>> MakeBaselines(
    const BaselineContext* context);

// ---- shared helpers (used by the individual baseline implementations) -----

/// Foreign-key adjacency restricted BFS: connects `tables` pairwise,
/// returning the join edges and any intermediate tables. When
/// `directed` is true, edges are only followed from foreign key to primary
/// key (the SQAK discipline). Returns false when some pair cannot connect.
bool ConnectByForeignKeys(const std::vector<JoinEdge>& foreign_keys,
                          const std::vector<std::string>& tables,
                          bool directed,
                          std::vector<JoinEdge>* joins,
                          std::vector<std::string>* all_tables);

/// True when the foreign-key graph component containing `table` has a
/// cycle (the DBExplorer/DISCOVER limitation).
bool ForeignKeyComponentHasCycle(const std::vector<JoinEdge>& foreign_keys,
                                 const std::string& table);

}  // namespace soda

#endif  // SODA_BASELINES_BASELINE_H_
