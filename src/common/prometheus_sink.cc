#include "common/prometheus_sink.h"

#include <cstdio>

namespace soda {

namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; we map everything else
// (the sinks use '.' as a namespace separator) to '_' and avoid ':'
// (reserved for recording rules by convention).
std::string SanitizeMetricName(std::string_view prefix,
                               std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  if (!out.empty()) out.push_back('_');
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, "_");
  return out;
}

// %.17g keeps doubles round-trippable; trailing ".0"-free integers come
// out as plain integers, which is what Prometheus parsers expect.
std::string FormatDouble(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Bucket boundary labels: the kHistogramBounds grid is human-chosen
// short decimals (0.025, 250), for which %g's 6 significant digits are
// already exact — and "0.025", not "0.025000000000000001", is what
// scrape configs match on.
std::string FormatBound(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view prefix) {
  std::string out;
  // Ordered maps in the snapshot → lexicographic, stable output.
  for (const auto& [name, value] : snapshot.counters) {
    std::string metric = SanitizeMetricName(prefix, name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    std::string metric = SanitizeMetricName(prefix, name);
    out += "# TYPE " + metric + " histogram\n";
    // Exposition buckets are cumulative over the shared fixed grid; the
    // sink's per-bucket counts prefix-sum into them exactly.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < kHistogramBounds.size(); ++b) {
      cumulative += h.buckets[b];
      out += metric + "_bucket{le=\"" + FormatBound(kHistogramBounds[b]) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    cumulative += h.buckets[kHistogramBounds.size()];
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += metric + "_sum " + FormatDouble(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace soda
