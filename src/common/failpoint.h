// Deterministic failpoint injection for fault testing.
//
// A failpoint is a named hook compiled into a hot seam of the serving
// stack (shard dispatch, pool task bodies, delta application, snippet
// streaming, HTTP request handling). Tests and benches *arm* a
// failpoint by name to make that seam throw, return an error Status,
// or sleep past a deadline — which is how fault_injection_test proves
// the router's quarantine/reroute machinery and the server's degraded
// mode without ever depending on real hardware faults.
//
// Cost when unarmed: a single relaxed atomic load and a predictable
// branch (the global armed count is zero, so the slow path — registry
// lock, name lookup — is never entered). That is the "no-op branch"
// every production build carries; configuring with -DSODA_FAILPOINTS=OFF
// compiles even the branch out and turns every macro into `(void)0`.
//
// Determinism: an armed failpoint with probability < 1 draws from its
// own seeded mt19937_64, so a given (seed, hit sequence) fires on the
// same hits in every run. `match` restricts firing to hits whose
// detail string equals it — e.g. arm "shard.dispatch" with match "1"
// to fail only shard 1's dispatches.
//
// Usage at a seam:
//
//   SODA_FAILPOINT("engine.pool_task");                  // void seam
//   SODA_FAILPOINT_D("shard.dispatch", shard_label);     // with detail
//   SODA_RETURN_NOT_OK(
//       SODA_FAILPOINT_STATUS("freshness.apply_delta", {}));  // Status seam
//
// and in a test:
//
//   Failpoints::Instance().Arm("shard.dispatch",
//                              {.action = FailpointSpec::Action::kThrow,
//                               .match = "1"});
//   ... drive traffic ...
//   Failpoints::Instance().DisarmAll();
//
// The registry is process-global and thread-safe; DisarmAll() in test
// teardown keeps cases independent.

#ifndef SODA_COMMON_FAILPOINT_H_
#define SODA_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <random>
#include <stdexcept>
#include <string>
#include <string_view>

#include "common/status.h"

namespace soda {

/// What an armed failpoint throws for Action::kThrow (and for
/// Action::kError at seams that cannot return a Status).
class FailpointError : public std::runtime_error {
 public:
  explicit FailpointError(const std::string& what)
      : std::runtime_error(what) {}
};

/// How an armed failpoint misbehaves.
struct FailpointSpec {
  enum class Action {
    kThrow,  // throw FailpointError
    kError,  // return Status::Unavailable (throws at void seams)
    kSleep,  // sleep sleep_ms, then continue normally (stall injection)
  };

  Action action = Action::kThrow;
  /// Stall duration for Action::kSleep.
  double sleep_ms = 0.0;
  /// Fire only on hits whose detail string equals this; "" fires on any
  /// hit. The shard-dispatch seam passes the shard index as detail, so
  /// match = "2" fails exactly shard 2.
  std::string match;
  /// Probability of firing on a matching hit, drawn from a generator
  /// seeded with `seed` — deterministic across runs.
  double probability = 1.0;
  uint64_t seed = 0x50daf1a6;
  /// Auto-disarm after this many fires; 0 = until Disarm().
  uint64_t max_fires = 0;
};

/// Process-global registry of armed failpoints. All methods are
/// thread-safe.
class Failpoints {
 public:
  static Failpoints& Instance();

  /// Arms (or re-arms, resetting counters and the RNG) `name`.
  void Arm(std::string_view name, FailpointSpec spec);

  /// Disarms `name`; a no-op when it was not armed.
  void Disarm(std::string_view name);

  /// Disarms everything — call from test teardown.
  void DisarmAll();

  /// Hits evaluated against `name` while armed (match misses included).
  uint64_t evaluations(std::string_view name) const;

  /// Times `name` actually fired (threw / errored / slept).
  uint64_t fires(std::string_view name) const;

  /// False when the build compiled failpoints out (-DSODA_FAILPOINTS=OFF):
  /// Arm() then has no observable effect, and fault tests should skip.
  static constexpr bool compiled_in() {
#if defined(SODA_FAILPOINTS)
    return true;
#else
    return false;
#endif
  }

  /// Slow path behind the macros — evaluates a hit on `name` with
  /// `detail`. Returns non-OK (Action::kError at a Status seam), throws
  /// FailpointError (kThrow, or kError at a void seam), sleeps (kSleep),
  /// or returns OK. Not for direct use; go through the macros so unarmed
  /// cost stays one atomic load.
  Status Evaluate(std::string_view name, std::string_view detail,
                  bool status_seam);

 private:
  Failpoints() = default;

  struct Armed {
    FailpointSpec spec;
    std::mt19937_64 rng;
    uint64_t evaluations = 0;
    uint64_t fires = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Armed, std::less<>> points_;
  // Lifetime totals survive disarming, so tests can assert "this
  // failpoint fired N times" after DisarmAll().
  std::map<std::string, uint64_t, std::less<>> total_evaluations_;
  std::map<std::string, uint64_t, std::less<>> total_fires_;
};

namespace failpoint_internal {
/// Number of currently armed failpoints — the whole unarmed fast path.
extern std::atomic<int> armed_count;
}  // namespace failpoint_internal

/// True when at least one failpoint is armed anywhere in the process.
inline bool FailpointsArmed() {
  return failpoint_internal::armed_count.load(std::memory_order_relaxed) > 0;
}

#if defined(SODA_FAILPOINTS)

/// Void seam: throws FailpointError or sleeps when armed.
#define SODA_FAILPOINT(name)                                             \
  do {                                                                   \
    if (::soda::FailpointsArmed()) {                                     \
      (void)::soda::Failpoints::Instance().Evaluate((name), {},          \
                                                    /*status_seam=*/false); \
    }                                                                    \
  } while (false)

/// Void seam with a detail string (matched against FailpointSpec::match).
#define SODA_FAILPOINT_D(name, detail)                                   \
  do {                                                                   \
    if (::soda::FailpointsArmed()) {                                     \
      (void)::soda::Failpoints::Instance().Evaluate((name), (detail),    \
                                                    /*status_seam=*/false); \
    }                                                                    \
  } while (false)

/// Status seam: evaluates to a Status — OK when unarmed/not firing,
/// Unavailable for Action::kError. kThrow still throws, kSleep sleeps.
#define SODA_FAILPOINT_STATUS(name, detail)                           \
  (::soda::FailpointsArmed()                                          \
       ? ::soda::Failpoints::Instance().Evaluate((name), (detail),    \
                                                 /*status_seam=*/true) \
       : ::soda::Status::OK())

#else  // !SODA_FAILPOINTS

#define SODA_FAILPOINT(name) ((void)0)
#define SODA_FAILPOINT_D(name, detail) ((void)0)
#define SODA_FAILPOINT_STATUS(name, detail) ::soda::Status::OK()

#endif  // SODA_FAILPOINTS

}  // namespace soda

#endif  // SODA_COMMON_FAILPOINT_H_
