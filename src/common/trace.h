// Per-request distributed-style tracing for the serving stack.
//
// Aggregate metrics (common/metrics.h) say *that* p99 moved; a trace
// says *why one query* was slow: which shard it hashed to, whether it
// missed the cache, how long each of the paper's five pipeline steps
// took, whether a breaker retry re-routed it. The Figure 4 pipeline is
// already reified as named stages, so every query has a natural span
// tree — this header is the machinery that records it.
//
// Model:
//
//   TraceContext  — a cheap copyable handle (shared pointer to the
//                   in-flight trace + the current parent span id).
//                   Carried by value in QueryContext, captured by value
//                   into pool closures; that explicit capture is how
//                   spans cross threads. An inactive context (the
//                   default) makes every operation a single branch.
//   Span          — RAII scope: monotonic start on construction,
//                   duration on End()/destruction, typed attributes,
//                   point-in-time events, and an error status. A span
//                   constructed from an inactive context is inert.
//   TraceRecorder — process-global: decides at the head of each request
//                   whether to trace it (1-in-N head sampling via
//                   SodaConfig::trace_sample_n), collects finished
//                   traces into a fixed-size ring, and always keeps
//                   traces that ended slow (slow_query_threshold_ms)
//                   or in error regardless of the head decision.
//
// Cost contract: with tracing disabled (sample_every == 0, the
// default), starting a trace is one relaxed atomic load and a branch,
// and every span/attr/event call on the resulting inactive context is
// one pointer test — the same shape as the unarmed failpoint path.
// BM_TraceOverhead holds this at <= 2% on the batch workload. Tracing
// never touches ranked output: byte-identity across shards x threads
// holds with sampling on or off (trace_test proves both).
//
// Thread-local propagation: layers that cannot thread a context through
// their signatures (the abstract SodaService interface) publish it with
// ScopedTraceContext and the next layer down picks it up with
// CurrentTraceContext() — the HTTP server installs, the router
// re-installs inside its dispatch-pool closures, the engine joins.

#ifndef SODA_COMMON_TRACE_H_
#define SODA_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace soda {

/// One typed key/value attached to a span ("shard" = 2, "cache" =
/// "hit"). Stored as a tagged union-of-members so rendering stays
/// trivially deterministic.
struct TraceAttr {
  enum class Kind { kString, kInt, kDouble, kBool };
  std::string key;
  Kind kind = Kind::kString;
  std::string string_value;
  int64_t int_value = 0;
  double double_value = 0.0;
  bool bool_value = false;
};

/// A point-in-time annotation inside a span ("reroute", "quarantine").
struct TraceEvent {
  std::string name;
  std::string detail;
  double at_ms = 0.0;  // offset from the trace's start
};

/// A finished span. Spans append to their trace's list in completion
/// order; renderers rebuild the tree from parent_id and sort children
/// by span id (creation order), so output is deterministic regardless
/// of which worker finished first.
struct SpanRecord {
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  double start_ms = 0.0;  // offset from the trace's start (monotonic)
  double duration_ms = 0.0;
  std::string status;  // "" = ok, else the error detail
  std::vector<TraceAttr> attrs;
  std::vector<TraceEvent> events;
};

/// The in-flight (and, once finished, archived) trace record. Shared by
/// every thread that carries the trace's context; span finishes append
/// under the record's own mutex — a lock is taken only on *sampled*
/// requests, never on the sampled-off fast path.
class TraceData {
 public:
  explicit TraceData(uint64_t trace_id)
      : trace_id_(trace_id), start_(std::chrono::steady_clock::now()) {}

  uint64_t trace_id() const { return trace_id_; }

  /// Milliseconds since the trace started (monotonic clock).
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void AppendSpan(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
  }

  void MarkError() { error_.store(true, std::memory_order_relaxed); }
  bool error() const { return error_.load(std::memory_order_relaxed); }

  /// Set once by TraceRecorder::FinishTrace; reads are safe afterwards.
  void set_wall_ms(double ms) { wall_ms_ = ms; }
  double wall_ms() const { return wall_ms_; }
  void set_slow(bool slow) { slow_ = slow; }
  bool slow() const { return slow_; }
  void set_head_sampled(bool sampled) { head_sampled_ = sampled; }
  bool head_sampled() const { return head_sampled_; }
  void set_root_name(std::string name) { root_name_ = std::move(name); }
  const std::string& root_name() const { return root_name_; }

  /// Snapshot of the finished spans (copy; the trace may still be
  /// appended to by stragglers when called mid-flight).
  std::vector<SpanRecord> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

  size_t span_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
  }

 private:
  uint64_t trace_id_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<uint64_t> next_span_id_{1};
  std::atomic<bool> error_{false};
  bool head_sampled_ = false;
  bool slow_ = false;
  double wall_ms_ = 0.0;
  std::string root_name_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

/// Cheap handle to an in-flight trace: a shared pointer plus the span
/// id new child spans should parent under. Copy freely; pass by value
/// into pool closures to carry a trace across threads.
struct TraceContext {
  std::shared_ptr<TraceData> data;
  uint64_t span_id = 0;  // parent for spans created from this context

  bool active() const { return data != nullptr; }
};

/// The thread's current trace context (inactive when none installed).
TraceContext CurrentTraceContext();

/// Installs `ctx` as the thread's current context for the scope —
/// restores the previous one on destruction. The seam for layers that
/// cannot change their signatures: the HTTP server installs the request
/// trace, the router re-installs inside dispatch-pool closures, and the
/// engine joins whatever is current.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext previous_;
};

/// RAII span. Inert (every method one branch) when the parent context
/// is inactive.
class Span {
 public:
  Span() = default;
  Span(const TraceContext& parent, std::string_view name);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      record_ = std::move(other.record_);
      data_ = std::move(other.data_);
      other.data_.reset();
    }
    return *this;
  }

  bool active() const { return data_ != nullptr; }

  /// Context for children of this span (inactive when the span is).
  TraceContext context() const {
    return active() ? TraceContext{data_, record_.span_id} : TraceContext{};
  }

  void SetAttr(std::string_view key, std::string_view value);
  void SetAttr(std::string_view key, const char* value) {
    SetAttr(key, std::string_view(value));
  }
  void SetAttr(std::string_view key, int64_t value);
  void SetAttr(std::string_view key, double value);
  void SetAttr(std::string_view key, bool value);

  /// Point-in-time event stamped at the current trace offset.
  void AddEvent(std::string_view name, std::string_view detail = {});

  /// Span-local status — a retired interpretation, a per-query error
  /// inside an otherwise healthy batch. Does not flip the trace's
  /// error flag (and so never forces the trace to be kept).
  void SetStatus(std::string_view message);

  /// Marks this span (and the whole trace) as errored — errored traces
  /// are always kept regardless of the head-sampling decision.
  void SetError(std::string_view message);

  /// Stamps the duration and appends the record to the trace. Idempotent;
  /// also called by the destructor.
  void End();

 private:
  SpanRecord record_;
  std::shared_ptr<TraceData> data_;
};

/// What FinishTrace decided about one trace.
struct TraceVerdict {
  bool kept = false;   // committed to the ring
  bool slow = false;   // exceeded the slow-query threshold
  bool error = false;  // at least one span errored
  size_t spans = 0;    // spans recorded on the trace
};

/// Process-global collector of finished traces. Head sampling, the
/// slow/error always-keep rule, the fixed-size ring of kept traces, and
/// the plain-text slow-query log all live here; /debug/traces and
/// DumpChromeTrace render from its snapshot.
class TraceRecorder {
 public:
  static TraceRecorder& Instance();

  /// Turns tracing on (sample_every >= 1: spans are recorded for every
  /// request, every sample_every-th is committed to the ring, slow/error
  /// traces always commit) or off (sample_every == 0 — the ~free path).
  /// slow_threshold_ms == 0 disables the slow always-keep. Engines apply
  /// their SodaConfig knobs here at Create time when either is set.
  void Configure(size_t sample_every, double slow_threshold_ms);

  /// Resizes the ring of kept traces (default 64; minimum 1). Existing
  /// kept traces are discarded.
  void SetCapacity(size_t capacity);

  /// Drops every kept trace, the slow-query log, and resets the head-
  /// sampling admission counter and lifetime totals — test isolation.
  /// Leaves Configure()/SetCapacity() settings in place.
  void Clear();

  /// One relaxed load: is tracing on at all?
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }

  size_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }
  double slow_threshold_ms() const {
    return slow_threshold_ms_.load(std::memory_order_relaxed);
  }
  size_t capacity() const;

  /// Starts a trace when tracing is enabled (inactive context
  /// otherwise). The head-sampling decision — admission counter modulo
  /// sample_every — is made and recorded here. `trace_id` 0 assigns the
  /// next internal id; a caller-supplied id (the X-Soda-Trace-Id
  /// correlation path) is used verbatim.
  TraceContext StartTrace(std::string_view root_name, uint64_t trace_id = 0);

  /// Finishes a trace started here: stamps wall/slow/error, commits it
  /// to the ring when the head decision or the always-keep rules say so,
  /// and appends a slow-query log line when it was slow. Call after the
  /// root span ended. Returns what happened so the caller can book its
  /// own trace.{spans,sampled,dropped} counters.
  TraceVerdict FinishTrace(const TraceContext& ctx, double wall_ms);

  /// Newest-last snapshot of the kept traces.
  std::vector<std::shared_ptr<const TraceData>> Snapshot() const;

  /// Plain-text slow-query log, oldest first (bounded at 64 lines).
  std::vector<std::string> SlowLog() const;

  /// Lifetime totals since the last Clear().
  uint64_t traces_started() const {
    return started_.load(std::memory_order_relaxed);
  }
  uint64_t traces_kept() const {
    return kept_.load(std::memory_order_relaxed);
  }
  uint64_t traces_dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

 private:
  TraceRecorder();

  std::atomic<size_t> sample_every_{0};
  std::atomic<double> slow_threshold_ms_{0.0};
  std::atomic<uint64_t> admissions_{0};
  std::atomic<uint64_t> next_trace_id_{1};
  std::atomic<uint64_t> started_{0};
  std::atomic<uint64_t> kept_{0};
  std::atomic<uint64_t> dropped_{0};

  // The ring of kept traces + the slow log. Touched only when a trace
  // commits (sampled traffic), never per span.
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const TraceData>> ring_;
  size_t ring_head_ = 0;
  size_t ring_size_ = 0;
  std::vector<std::string> slow_log_;
};

/// Formats a 64-bit trace id the way it travels in X-Soda-Trace-Id:
/// 16 lowercase hex digits.
std::string FormatTraceId(uint64_t id);

/// Parses an X-Soda-Trace-Id header value: 1-16 hex digits, nonzero.
/// Returns false (and leaves *id untouched) on anything else.
bool ParseTraceId(std::string_view text, uint64_t* id);

/// Deterministic JSON for /debug/traces: `{"traces":[...]}` with one
/// span tree per kept trace (oldest first), children nested and sorted
/// by span id. Traces faster than `min_ms` are filtered out; with
/// `errors_only`, only traces that ended in error render.
std::string RenderTraceJson(
    const std::vector<std::shared_ptr<const TraceData>>& traces,
    double min_ms = 0.0, bool errors_only = false);

/// Chrome trace_event-format JSON ("X" complete events, microsecond
/// timestamps) — load the string in about:tracing or Perfetto.
std::string DumpChromeTrace(
    const std::vector<std::shared_ptr<const TraceData>>& traces);

}  // namespace soda

#endif  // SODA_COMMON_TRACE_H_
