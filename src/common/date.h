// Proleptic-Gregorian calendar dates, stored as days since 1970-01-01.
//
// SODA's query language has a first-class date(YYYY-MM-DD) operator and the
// warehouse uses bi-temporal historization (valid-from/valid-to columns), so
// dates need total ordering, arithmetic and exact round-trip formatting.

#ifndef SODA_COMMON_DATE_H_
#define SODA_COMMON_DATE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace soda {

/// A calendar date with day precision. Value type, totally ordered.
class Date {
 public:
  /// Days since the Unix epoch (1970-01-01 == 0). May be negative.
  constexpr Date() : days_(0) {}
  constexpr explicit Date(int32_t days_since_epoch)
      : days_(days_since_epoch) {}

  /// Builds a date from calendar components (civil calendar, no validation
  /// of impossible dates beyond normalization; use Parse for strictness).
  static Date FromYmd(int year, int month, int day);

  /// Parses strict "YYYY-MM-DD".
  static Result<Date> Parse(std::string_view text);

  int32_t days_since_epoch() const { return days_; }

  int year() const;
  int month() const;
  int day() const;

  /// Formats as "YYYY-MM-DD".
  std::string ToString() const;

  Date AddDays(int32_t n) const { return Date(days_ + n); }

  auto operator<=>(const Date&) const = default;

 private:
  int32_t days_;
};

}  // namespace soda

#endif  // SODA_COMMON_DATE_H_
