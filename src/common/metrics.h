// Pluggable observability sink for the SODA service layer.
//
// The paper reports fleet-level per-step latency splits (Section 5.2.2);
// reproducing those numbers for a long-running engine needs more than the
// per-response StepTimings — it needs cumulative counters and latency
// distributions across every query the engine ever served. MetricsSink is
// the integration point: the pipeline drivers observe one latency sample
// per stage (keyed by PipelineStage::name()), and the SodaEngine adds
// cache hit/miss counters, batch dedup accounting, snippet outcomes and
// worker-queue depth samples.
//
// The default InMemoryMetricsSink aggregates counters and fixed-bucket
// histograms under a mutex and hands out consistent snapshots; deployments
// that export to statsd/Prometheus implement the three-method interface
// and plug it in with SodaEngine::set_metrics_sink.

#ifndef SODA_COMMON_METRICS_H_
#define SODA_COMMON_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace soda {

/// Receives metric events. Implementations must be thread-safe: the
/// engine's worker pool observes stage latencies concurrently.
class MetricsSink {
 public:
  virtual ~MetricsSink() = default;

  /// Adds `delta` to the monotonic counter `name`.
  virtual void IncrementCounter(std::string_view name, uint64_t delta) = 0;

  /// Records one sample into the distribution `name`. Stage latencies
  /// ("stage.<name>.ms") and queue-depth samples ("pool.queue_depth")
  /// both go through here.
  virtual void Observe(std::string_view name, double value) = 0;
};

/// Fixed exponential bucket upper bounds (milliseconds for latencies; the
/// same grid is reused for dimensionless samples like queue depth). The
/// last bucket is the +inf overflow.
inline constexpr std::array<double, 14> kHistogramBounds = {
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5,  1.0,
    2.5,  5.0,   10.0, 25.0, 50.0, 100.0, 250.0};
inline constexpr size_t kHistogramBuckets = kHistogramBounds.size() + 1;

/// Point-in-time copy of one distribution.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  double mean() const { return count == 0 ? 0.0 : sum / count; }

  /// Bucket-boundary estimate of the p-th percentile (p in [0, 100]):
  /// the upper bound of the bucket holding that rank — an upper bound on
  /// the true value, exact enough for dashboard-style latency reporting.
  double Percentile(double p) const;

  /// Folds `other` into this distribution. Exact for count/sum/min/max
  /// and, because every sink shares the fixed kHistogramBounds grid, for
  /// the buckets too — merging N shard histograms loses nothing over
  /// observing every sample into one sink.
  void MergeFrom(const HistogramSnapshot& other);

  /// The distribution of samples observed after `earlier` was taken
  /// (both snapshots of the same monotonically growing sink): count, sum
  /// and buckets subtract exactly on the shared grid. min/max cannot be
  /// reconstructed for an interval from endpoint snapshots; the delta
  /// carries bucket-derived bounds (the grid edges of the lowest and
  /// highest non-empty delta buckets) — exact enough for rate panels.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// Point-in-time copy of everything a sink has aggregated. Ordered maps
/// so printed output is stable across runs.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Lookup helpers; missing names return 0 / empty. histogram() hands
  /// out a pointer into this snapshot, so it refuses temporaries — bind
  /// the snapshot to a local first (TSan caught exactly that misuse).
  uint64_t counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const&;
  const HistogramSnapshot* histogram(const std::string& name) const&& =
      delete;

  /// Human-readable dump, one metric per line — what service_demo and the
  /// bench smoke-run print (CI greps this output for required counters).
  std::string ToString() const;

  /// Folds `other` into this snapshot: counters add, histograms merge
  /// bucket-by-bucket. The sharded router uses this to present N replica
  /// sinks (plus its own router.* samples) as one fleet-level view.
  void MergeFrom(const MetricsSnapshot& other);

  /// What happened between `earlier` (an older snapshot of the same
  /// sink) and this one: counters and histogram counts/sums/buckets
  /// subtract. Metrics absent from `earlier` pass through whole;
  /// metrics that produced no new samples drop out of the delta
  /// entirely — as does any metric that went backwards (a Reset() sink
  /// renders as an empty interval rather than underflowing; take a
  /// fresh baseline snapshot after resetting). This is the
  /// per-interval-rate primitive the Prometheus exporter's
  /// RenderDeltaText builds on.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& earlier) const;
};

/// Default sink: counters + fixed-bucket histograms behind one mutex.
/// Cheap enough for the hot path (one lock per event, no allocation once
/// a metric name exists).
class InMemoryMetricsSink : public MetricsSink {
 public:
  void IncrementCounter(std::string_view name, uint64_t delta) override;
  void Observe(std::string_view name, double value) override;

  /// Creates the named distribution with zero samples when absent (no-op
  /// otherwise): pre-registration for exporters, so every series shows
  /// up on the first /metrics scrape without a phantom sample skewing
  /// count/min/sum. Counters pre-register via IncrementCounter(name, 0).
  void RegisterHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, uint64_t, std::less<>> counters_;
  // Aggregated in snapshot form so Snapshot() is a plain copy.
  std::map<std::string, HistogramSnapshot, std::less<>> histograms_;
};

}  // namespace soda

#endif  // SODA_COMMON_METRICS_H_
