#include "common/status.h"

namespace soda {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid_argument";
    case StatusCode::kNotFound:
      return "not_found";
    case StatusCode::kAlreadyExists:
      return "already_exists";
    case StatusCode::kOutOfRange:
      return "out_of_range";
    case StatusCode::kParseError:
      return "parse_error";
    case StatusCode::kTypeError:
      return "type_error";
    case StatusCode::kUnsupported:
      return "unsupported";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace soda
