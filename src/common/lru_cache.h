// Bounded, thread-safe LRU cache.
//
// The SODA engine fronts the whole pipeline with one of these, keyed on
// the whitespace-normalized query string: business-user workloads repeat
// a small set of queries (dashboards, saved searches), so a tiny cache
// absorbs most of the traffic. Values are stored as shared_ptr so the
// cache itself never copies the payload on a hit and eviction never
// invalidates a reader.

#ifndef SODA_COMMON_LRU_CACHE_H_
#define SODA_COMMON_LRU_CACHE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>

namespace soda {

/// Monotonic hit/miss counters, readable while the cache is in use.
struct CacheStats {
  size_t hits = 0;
  size_t misses = 0;
  size_t evictions = 0;      // capacity-driven LRU evictions
  size_t invalidations = 0;  // keyed evictions via EraseIf
  size_t size = 0;
  size_t capacity = 0;

  double hit_rate() const {
    size_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  /// Elementwise sum — how a sharded deployment aggregates its replicas'
  /// books into one view (capacity sums too: it is the fleet's total).
  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    invalidations += other.invalidations;
    size += other.size;
    capacity += other.capacity;
    return *this;
  }
};

template <typename K, typename V>
class LruCache {
 public:
  /// A capacity of 0 disables the cache: every Get misses, Put is a no-op.
  explicit LruCache(size_t capacity) : capacity_(capacity) {}

  LruCache(const LruCache&) = delete;
  LruCache& operator=(const LruCache&) = delete;

  /// Returns the cached value and refreshes its recency, or nullptr.
  std::shared_ptr<const V> Get(const K& key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Inserts (or replaces) a value, evicting the least recently used
  /// entry when over capacity. Returns the evicted entry's key when one
  /// was dropped — the hook dependents (the freshness layer's reverse
  /// maps) use to forget keys the cache can no longer serve.
  std::optional<K> Put(const K& key, std::shared_ptr<const V> value) {
    if (capacity_ == 0) return std::nullopt;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return std::nullopt;
    }
    order_.emplace_front(key, std::move(value));
    map_[key] = order_.begin();
    if (map_.size() > capacity_) {
      std::optional<K> evicted(std::move(order_.back().first));
      map_.erase(*evicted);
      order_.pop_back();
      ++evictions_;
      return evicted;
    }
    return std::nullopt;
  }

  /// Pure membership probe: no LRU bump, no hit/miss accounting — for
  /// bookkeeping layers (freshness dependency maps) that must ask
  /// "could this key still be served?" without distorting the stats.
  bool Contains(const K& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.count(key) > 0;
  }

  /// Counts `n` extra hits without probing the map. The engine's batch
  /// path dedups identical normalized queries before touching the cache,
  /// so repeats of one key inside a batch are served from the in-flight
  /// computed entry; this keeps the books right — one miss (the unique
  /// probe) plus N-1 hits per batch. No-op when the cache is disabled.
  void RecordDedupHits(size_t n) {
    if (capacity_ == 0 || n == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    hits_ += n;
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    order_.clear();
  }

  /// Keyed eviction: drops every entry whose key satisfies `pred` and
  /// returns how many were dropped. This is the cache-invalidation hook —
  /// when base data changes, the engine evicts exactly the answers the
  /// change can affect instead of nuking the whole cache. The predicate
  /// runs under the cache lock, so it must be cheap and must not touch
  /// the cache; in-flight readers keep their shared_ptr payloads alive.
  template <typename Pred>
  size_t EraseIf(Pred pred) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t erased = 0;
    for (auto it = order_.begin(); it != order_.end();) {
      if (pred(it->first)) {
        map_.erase(it->first);
        it = order_.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
    invalidations_ += erased;
    return erased;
  }

  CacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.invalidations = invalidations_;
    s.size = map_.size();
    s.capacity = capacity_;
    return s;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
  }
  size_t capacity() const { return capacity_; }

 private:
  using Entry = std::pair<K, std::shared_ptr<const V>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> order_;  // front = most recently used
  std::unordered_map<K, typename std::list<Entry>::iterator> map_;
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
  size_t invalidations_ = 0;
};

}  // namespace soda

#endif  // SODA_COMMON_LRU_CACHE_H_
