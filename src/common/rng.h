// Deterministic pseudo-random number generation for dataset synthesis.
//
// All synthetic data in this repository (the mini-bank base data and the
// enterprise warehouse) must be bit-identical across runs so that the
// benchmark tables are reproducible. SplitMix64 is small, fast and has
// well-understood statistical behaviour — more than enough for workload
// generation.

#ifndef SODA_COMMON_RNG_H_
#define SODA_COMMON_RNG_H_

#include <cstdint>
#include <string>
#include <vector>

namespace soda {

/// SplitMix64 generator with convenience helpers for data synthesis.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t Below(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[Below(items.size())];
  }

 private:
  uint64_t state_;
};

}  // namespace soda

#endif  // SODA_COMMON_RNG_H_
