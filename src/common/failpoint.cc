#include "common/failpoint.h"

#include <chrono>
#include <thread>
#include <utility>

namespace soda {

namespace failpoint_internal {
std::atomic<int> armed_count{0};
}  // namespace failpoint_internal

Failpoints& Failpoints::Instance() {
  static Failpoints* instance = new Failpoints();
  return *instance;
}

void Failpoints::Arm(std::string_view name, FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Armed armed;
  armed.rng.seed(spec.seed);
  armed.spec = std::move(spec);
  auto [it, inserted] = points_.insert_or_assign(std::string(name),
                                                 std::move(armed));
  (void)it;
  if (inserted) {
    failpoint_internal::armed_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void Failpoints::Disarm(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) return;
  points_.erase(it);
  failpoint_internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
}

void Failpoints::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  failpoint_internal::armed_count.fetch_sub(static_cast<int>(points_.size()),
                                            std::memory_order_relaxed);
  points_.clear();
}

uint64_t Failpoints::evaluations(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = total_evaluations_.find(name);
  return it == total_evaluations_.end() ? 0 : it->second;
}

uint64_t Failpoints::fires(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = total_fires_.find(name);
  return it == total_fires_.end() ? 0 : it->second;
}

Status Failpoints::Evaluate(std::string_view name, std::string_view detail,
                            bool status_seam) {
  // Decide under the lock, act (sleep/throw) after releasing it — a
  // stalling failpoint must not stall every other seam's evaluation.
  FailpointSpec::Action action;
  double sleep_ms = 0.0;
  std::string label;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = points_.find(name);
    if (it == points_.end()) return Status::OK();
    Armed& armed = it->second;
    ++armed.evaluations;
    ++total_evaluations_[std::string(name)];
    if (!armed.spec.match.empty() && detail != armed.spec.match) {
      return Status::OK();
    }
    if (armed.spec.probability < 1.0) {
      double draw = std::uniform_real_distribution<double>(0.0, 1.0)(
          armed.rng);
      if (draw >= armed.spec.probability) return Status::OK();
    }
    ++armed.fires;
    ++total_fires_[std::string(name)];
    action = armed.spec.action;
    sleep_ms = armed.spec.sleep_ms;
    label = std::string(name);
    if (!detail.empty()) label += "@" + std::string(detail);
    if (armed.spec.max_fires != 0 && armed.fires >= armed.spec.max_fires) {
      points_.erase(it);
      failpoint_internal::armed_count.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  switch (action) {
    case FailpointSpec::Action::kSleep:
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          sleep_ms));
      return Status::OK();
    case FailpointSpec::Action::kError:
      if (status_seam) {
        return Status::Unavailable("failpoint " + label + " fired");
      }
      [[fallthrough]];
    case FailpointSpec::Action::kThrow:
      break;
  }
  throw FailpointError("failpoint " + label + " fired");
}

}  // namespace soda
