// Minimal Status / Result<T> error-handling vocabulary, modeled after the
// Arrow/Abseil style used throughout open-source database codebases.
//
// Functions that can fail return either a Status (no payload) or a
// Result<T> (payload or error). Errors carry a code and a human-readable
// message; they are cheap to move and test.

#ifndef SODA_COMMON_STATUS_H_
#define SODA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace soda {

/// Error taxonomy for the SODA library. Kept deliberately small; callers
/// should branch on whether an operation succeeded, not on fine-grained
/// error codes.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kParseError,
  kTypeError,
  kUnsupported,
  kInternal,
  kUnavailable,
};

/// Returns the canonical lowercase name for a status code ("ok",
/// "invalid_argument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation that produces no value.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// A transiently failed dependency (quarantined shard replica, armed
  /// failpoint): the request was valid, retrying later may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "code: message" for logging and test failure output.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Outcome of an operation that produces a value of type T on success.
/// Accessing the value of a failed Result is a programming error (asserts
/// in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value: `return some_t;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status: `return Status::...;`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace soda

/// Propagates a non-OK Status out of the current function.
#define SODA_RETURN_NOT_OK(expr)              \
  do {                                        \
    ::soda::Status _st = (expr);              \
    if (!_st.ok()) return _st;                \
  } while (false)

/// Evaluates a Result expression and either assigns its value to `lhs`
/// or propagates the error status.
#define SODA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value();

#define SODA_MACRO_CONCAT_INNER(x, y) x##y
#define SODA_MACRO_CONCAT(x, y) SODA_MACRO_CONCAT_INNER(x, y)

#define SODA_ASSIGN_OR_RETURN(lhs, expr) \
  SODA_ASSIGN_OR_RETURN_IMPL(            \
      SODA_MACRO_CONCAT(_soda_result_, __LINE__), lhs, expr)

#endif  // SODA_COMMON_STATUS_H_
