#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace soda {

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    out.push_back(static_cast<char>(std::tolower(c)));
  }
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    out.push_back(static_cast<char>(std::toupper(c)));
  }
  return out;
}

namespace {

// Folds one UTF-8 encoded Latin-1 supplement character (two bytes,
// 0xC3 0x80..0xBF) to its ASCII base letter(s). Returns true when folded.
bool FoldUtf8Latin1(unsigned char second, std::string* out) {
  // 0xC3 0x80 is U+00C0. Map the accented ranges onto base letters.
  const unsigned cp = 0xC0u + (second - 0x80u);
  auto push = [out](const char* s) { out->append(s); };
  if ((cp >= 0xC0 && cp <= 0xC5) || (cp >= 0xE0 && cp <= 0xE5)) {
    push("a");
  } else if (cp == 0xC7 || cp == 0xE7) {
    push("c");
  } else if ((cp >= 0xC8 && cp <= 0xCB) || (cp >= 0xE8 && cp <= 0xEB)) {
    push("e");
  } else if ((cp >= 0xCC && cp <= 0xCF) || (cp >= 0xEC && cp <= 0xEF)) {
    push("i");
  } else if (cp == 0xD1 || cp == 0xF1) {
    push("n");
  } else if ((cp >= 0xD2 && cp <= 0xD6) || cp == 0xD8 ||
             (cp >= 0xF2 && cp <= 0xF6) || cp == 0xF8) {
    push("o");
  } else if ((cp >= 0xD9 && cp <= 0xDC) || (cp >= 0xF9 && cp <= 0xFC)) {
    push("u");
  } else if (cp == 0xDD || cp == 0xFD || cp == 0xFF) {
    push("y");
  } else if (cp == 0xDF) {
    push("ss");
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string FoldForMatch(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c < 0x80) {
      out.push_back(static_cast<char>(std::tolower(c)));
    } else if (c == 0xC3 && i + 1 < s.size()) {
      unsigned char second = static_cast<unsigned char>(s[i + 1]);
      if (FoldUtf8Latin1(second, &out)) {
        ++i;
      } else {
        out.push_back(static_cast<char>(c));
      }
    } else {
      // Latin-1 single-byte fallback (e.g. files written as ISO-8859-1).
      switch (c) {
        case 0xFC: case 0xDC: out.push_back('u'); break;
        case 0xF6: case 0xD6: out.push_back('o'); break;
        case 0xE4: case 0xC4: out.push_back('a'); break;
        case 0xE9: case 0xC9: case 0xE8: case 0xC8: out.push_back('e'); break;
        default: out.push_back(static_cast<char>(c));
      }
    }
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep, bool keep_empty) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (keep_empty || !piece.empty()) parts.emplace_back(piece);
    if (pos == s.size()) break;
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i > start) parts.emplace_back(s.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool EqualsFolded(std::string_view s, std::string_view t) {
  return FoldForMatch(s) == FoldForMatch(t);
}

bool ContainsFolded(std::string_view haystack, std::string_view needle) {
  return FoldForMatch(haystack).find(FoldForMatch(needle)) !=
         std::string::npos;
}

std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) break;
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
  out.append(s.substr(start));
  return out;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace soda
