// String utilities shared across the SODA library.
//
// Keyword matching in SODA is case-insensitive and diacritic-insensitive:
// the paper's running example matches the query keyword "Zurich" against the
// base-data value "Zürich". FoldForMatch implements exactly that
// normalization (ASCII lowercase + folding of the Latin-1 diacritics that
// occur in the banking datasets).

#ifndef SODA_COMMON_STRINGS_H_
#define SODA_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace soda {

/// ASCII lowercase copy of `s` (bytes >= 0x80 are passed through).
std::string ToLower(std::string_view s);

/// ASCII uppercase copy of `s`.
std::string ToUpper(std::string_view s);

/// Lowercases and folds common Latin-1/UTF-8 diacritics to their ASCII base
/// letter: "Zürich" -> "zurich", "Müller" -> "muller", "Génève" -> "geneve".
/// Also folds the German sharp s to "ss".
std::string FoldForMatch(std::string_view s);

/// Splits on `sep`, dropping empty pieces when `keep_empty` is false.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool keep_empty = false);

/// Splits on any ASCII whitespace run.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True when `s` and `t` are equal after FoldForMatch normalization.
bool EqualsFolded(std::string_view s, std::string_view t);

/// True when FoldForMatch(haystack) contains FoldForMatch(needle).
bool ContainsFolded(std::string_view haystack, std::string_view needle);

/// Replaces every occurrence of `from` with `to`.
std::string ReplaceAll(std::string_view s, std::string_view from,
                       std::string_view to);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace soda

#endif  // SODA_COMMON_STRINGS_H_
