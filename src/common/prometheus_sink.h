// Prometheus text-exposition exporter over the MetricsSink interface.
//
// The ROADMAP's "metrics exporters" item: deployments that scrape
// instead of push plug one of these into SodaEngine::set_metrics_sink
// (one instance may serve every shard — it is thread-safe) and serve
// RenderText() from their /metrics endpoint. Rendering follows the
// Prometheus text exposition format, version 0.0.4:
//
//   * counters become `<prefix>_<name>_total` with a # TYPE header;
//   * distributions become classic histograms — cumulative
//     `_bucket{le="..."}` series over the shared kHistogramBounds grid,
//     plus `_sum` and `_count`;
//   * metric names are sanitized ([a-zA-Z0-9_], '.' → '_') and emitted
//     in lexicographic order, so output is stable and golden-testable.
//
// Per-interval rates come from snapshot diffing: keep the previous
// scrape's MetricsSnapshot and render `now.DeltaSince(previous)` (see
// common/metrics.h) — counters subtract, histogram counts/sums/buckets
// subtract, giving exact per-interval distributions on the fixed grid.

#ifndef SODA_COMMON_PROMETHEUS_SINK_H_
#define SODA_COMMON_PROMETHEUS_SINK_H_

#include <string>
#include <string_view>

#include "common/metrics.h"

namespace soda {

/// Renders `snapshot` in Prometheus text exposition format. Works on any
/// snapshot — a single engine's, a sharded fleet's merged view, or a
/// DeltaSince interval. `prefix` namespaces every metric ("soda" →
/// "soda_cache_hit_total").
std::string RenderPrometheusText(const MetricsSnapshot& snapshot,
                                 std::string_view prefix = "soda");

/// A MetricsSink that aggregates like the in-memory default and renders
/// Prometheus text on demand. Thread-safe; install with
/// SodaEngine::set_metrics_sink (or hand one instance to a sharded
/// fleet).
class PrometheusTextMetricsSink : public MetricsSink {
 public:
  explicit PrometheusTextMetricsSink(std::string prefix = "soda")
      : prefix_(std::move(prefix)) {}

  void IncrementCounter(std::string_view name, uint64_t delta) override {
    aggregate_.IncrementCounter(name, delta);
  }
  void Observe(std::string_view name, double value) override {
    aggregate_.Observe(name, value);
  }

  /// Consistent snapshot of everything observed so far (feed this to
  /// DeltaSince for interval rates).
  MetricsSnapshot Snapshot() const { return aggregate_.Snapshot(); }

  /// The /metrics payload: the current snapshot in exposition format.
  std::string RenderText() const {
    return RenderPrometheusText(Snapshot(), prefix_);
  }

  /// The per-interval payload: everything observed since `previous`.
  std::string RenderDeltaText(const MetricsSnapshot& previous) const {
    return RenderPrometheusText(Snapshot().DeltaSince(previous), prefix_);
  }

  const std::string& prefix() const { return prefix_; }

 private:
  std::string prefix_;
  InMemoryMetricsSink aggregate_;
};

}  // namespace soda

#endif  // SODA_COMMON_PROMETHEUS_SINK_H_
