#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

namespace soda {

namespace {

size_t BucketIndex(double value) {
  auto it = std::lower_bound(kHistogramBounds.begin(), kHistogramBounds.end(),
                             value);
  return static_cast<size_t>(it - kHistogramBounds.begin());
}

}  // namespace

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t rank = static_cast<uint64_t>(p / 100.0 *
                                        static_cast<double>(count - 1)) + 1;
  uint64_t seen = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    seen += buckets[b];
    if (seen >= rank) {
      return b < kHistogramBounds.size() ? kHistogramBounds[b] : max;
    }
  }
  return max;
}

void HistogramSnapshot::MergeFrom(const HistogramSnapshot& other) {
  if (other.count == 0) return;
  if (count == 0 || other.min < min) min = other.min;
  if (count == 0 || other.max > max) max = other.max;
  count += other.count;
  sum += other.sum;
  for (size_t b = 0; b < buckets.size(); ++b) buckets[b] += other.buckets[b];
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  if (earlier.count == 0) return *this;
  HistogramSnapshot delta;
  if (count <= earlier.count) return delta;  // nothing new (or a reset)
  delta.count = count - earlier.count;
  delta.sum = sum - earlier.sum;
  size_t lowest = kHistogramBuckets;
  size_t highest = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    delta.buckets[b] =
        buckets[b] >= earlier.buckets[b] ? buckets[b] - earlier.buckets[b]
                                         : 0;
    if (delta.buckets[b] > 0) {
      if (lowest == kHistogramBuckets) lowest = b;
      highest = b;
    }
  }
  // Interval min/max are unknowable from endpoint snapshots; bound them
  // by the grid edges of the occupied delta buckets (clamped to the
  // lifetime extremes, which always contain the interval).
  delta.min = (lowest == kHistogramBuckets || lowest == 0)
                  ? min
                  : kHistogramBounds[lowest - 1];
  delta.max =
      highest >= kHistogramBounds.size() ? max : kHistogramBounds[highest];
  if (delta.min < min) delta.min = min;
  if (delta.max > max) delta.max = max;
  return delta;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(
    const MetricsSnapshot& earlier) const {
  MetricsSnapshot delta;
  for (const auto& [name, value] : counters) {
    auto it = earlier.counters.find(name);
    uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    if (value > base) delta.counters[name] = value - base;
  }
  for (const auto& [name, h] : histograms) {
    auto it = earlier.histograms.find(name);
    HistogramSnapshot d =
        it == earlier.histograms.end() ? h : h.DeltaSince(it->second);
    if (d.count > 0) delta.histograms[name] = d;
  }
  return delta;
}

void MetricsSnapshot::MergeFrom(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, h] : other.histograms) {
    histograms[name].MergeFrom(h);
  }
}

uint64_t MetricsSnapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const& {
  auto it = histograms.find(name);
  return it == histograms.end() ? nullptr : &it->second;
}

std::string MetricsSnapshot::ToString() const {
  std::string out;
  char line[256];
  for (const auto& [name, value] : counters) {
    std::snprintf(line, sizeof(line), "counter %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += line;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %-30s count=%llu mean=%.3f min=%.3f max=%.3f "
                  "p50<=%.3f p99<=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean(), h.min, h.max, h.Percentile(50), h.Percentile(99));
    out += line;
  }
  return out;
}

void InMemoryMetricsSink::IncrementCounter(std::string_view name,
                                           uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void InMemoryMetricsSink::Observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), HistogramSnapshot{}).first;
  }
  HistogramSnapshot& h = it->second;
  if (h.count == 0 || value < h.min) h.min = value;
  if (h.count == 0 || value > h.max) h.max = value;
  ++h.count;
  h.sum += value;
  ++h.buckets[BucketIndex(value)];
}

void InMemoryMetricsSink::RegisterHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    histograms_.emplace(std::string(name), HistogramSnapshot{});
  }
}

MetricsSnapshot InMemoryMetricsSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  for (const auto& [name, value] : counters_) snapshot.counters[name] = value;
  for (const auto& [name, h] : histograms_) snapshot.histograms[name] = h;
  return snapshot;
}

void InMemoryMetricsSink::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

}  // namespace soda
