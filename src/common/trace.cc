#include "common/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>

#include "net/json.h"

namespace soda {

namespace {

// The thread's installed context. A plain thread_local TraceContext
// would run a shared_ptr destructor at thread exit after the pointee's
// library state may be gone; the pointer-to-storage indirection keeps
// the read path to one thread_local access plus a null test.
thread_local TraceContext t_current_context;

constexpr size_t kDefaultRingCapacity = 64;
constexpr size_t kSlowLogCapacity = 64;

void AppendAttrValue(std::string* out, const TraceAttr& attr) {
  switch (attr.kind) {
    case TraceAttr::Kind::kString:
      AppendJsonQuoted(out, attr.string_value);
      break;
    case TraceAttr::Kind::kInt:
      AppendJsonNumber(out, static_cast<double>(attr.int_value));
      break;
    case TraceAttr::Kind::kDouble:
      AppendJsonNumber(out, attr.double_value);
      break;
    case TraceAttr::Kind::kBool:
      out->append(attr.bool_value ? "true" : "false");
      break;
  }
}

void AppendSpanJson(std::string* out, const SpanRecord& span,
                    const std::multimap<uint64_t, const SpanRecord*>& children);

void AppendChildrenJson(
    std::string* out, uint64_t parent_id,
    const std::multimap<uint64_t, const SpanRecord*>& children) {
  out->push_back('[');
  auto [begin, end] = children.equal_range(parent_id);
  bool first = true;
  for (auto it = begin; it != end; ++it) {
    if (!first) out->push_back(',');
    first = false;
    AppendSpanJson(out, *it->second, children);
  }
  out->push_back(']');
}

void AppendSpanJson(std::string* out, const SpanRecord& span,
                    const std::multimap<uint64_t, const SpanRecord*>& children) {
  out->append("{\"id\":");
  AppendJsonNumber(out, static_cast<double>(span.span_id));
  out->append(",\"name\":");
  AppendJsonQuoted(out, span.name);
  out->append(",\"start_ms\":");
  AppendJsonNumber(out, span.start_ms);
  out->append(",\"duration_ms\":");
  AppendJsonNumber(out, span.duration_ms);
  if (!span.status.empty()) {
    out->append(",\"error\":");
    AppendJsonQuoted(out, span.status);
  }
  if (!span.attrs.empty()) {
    out->append(",\"attrs\":{");
    for (size_t i = 0; i < span.attrs.size(); ++i) {
      if (i > 0) out->push_back(',');
      AppendJsonQuoted(out, span.attrs[i].key);
      out->push_back(':');
      AppendAttrValue(out, span.attrs[i]);
    }
    out->push_back('}');
  }
  if (!span.events.empty()) {
    out->append(",\"events\":[");
    for (size_t i = 0; i < span.events.size(); ++i) {
      if (i > 0) out->push_back(',');
      out->append("{\"name\":");
      AppendJsonQuoted(out, span.events[i].name);
      if (!span.events[i].detail.empty()) {
        out->append(",\"detail\":");
        AppendJsonQuoted(out, span.events[i].detail);
      }
      out->append(",\"at_ms\":");
      AppendJsonNumber(out, span.events[i].at_ms);
      out->push_back('}');
    }
    out->push_back(']');
  }
  out->append(",\"children\":");
  AppendChildrenJson(out, span.span_id, children);
  out->push_back('}');
}

/// Sorted child index for one trace's spans: span id is creation
/// order, so the rendered tree is deterministic no matter which worker
/// thread finished (appended) first.
std::multimap<uint64_t, const SpanRecord*> ChildIndex(
    const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& span : spans) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const SpanRecord* a, const SpanRecord* b) {
              return a->span_id < b->span_id;
            });
  std::multimap<uint64_t, const SpanRecord*> children;
  for (const SpanRecord* span : ordered) {
    children.emplace(span->parent_id, span);
  }
  return children;
}

}  // namespace

// ---------------------------------------------------------------------------
// Context propagation
// ---------------------------------------------------------------------------

TraceContext CurrentTraceContext() { return t_current_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : previous_(std::move(t_current_context)) {
  t_current_context = std::move(ctx);
}

ScopedTraceContext::~ScopedTraceContext() {
  t_current_context = std::move(previous_);
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

Span::Span(const TraceContext& parent, std::string_view name) {
  if (!parent.active()) return;
  data_ = parent.data;
  record_.span_id = data_->NextSpanId();
  record_.parent_id = parent.span_id;
  record_.name.assign(name);
  record_.start_ms = data_->ElapsedMs();
}

void Span::SetAttr(std::string_view key, std::string_view value) {
  if (!active()) return;
  TraceAttr attr;
  attr.key.assign(key);
  attr.kind = TraceAttr::Kind::kString;
  attr.string_value.assign(value);
  record_.attrs.push_back(std::move(attr));
}

void Span::SetAttr(std::string_view key, int64_t value) {
  if (!active()) return;
  TraceAttr attr;
  attr.key.assign(key);
  attr.kind = TraceAttr::Kind::kInt;
  attr.int_value = value;
  record_.attrs.push_back(std::move(attr));
}

void Span::SetAttr(std::string_view key, double value) {
  if (!active()) return;
  TraceAttr attr;
  attr.key.assign(key);
  attr.kind = TraceAttr::Kind::kDouble;
  attr.double_value = value;
  record_.attrs.push_back(std::move(attr));
}

void Span::SetAttr(std::string_view key, bool value) {
  if (!active()) return;
  TraceAttr attr;
  attr.key.assign(key);
  attr.kind = TraceAttr::Kind::kBool;
  attr.bool_value = value;
  record_.attrs.push_back(std::move(attr));
}

void Span::AddEvent(std::string_view name, std::string_view detail) {
  if (!active()) return;
  TraceEvent event;
  event.name.assign(name);
  event.detail.assign(detail);
  event.at_ms = data_->ElapsedMs();
  record_.events.push_back(std::move(event));
}

void Span::SetStatus(std::string_view message) {
  if (!active()) return;
  record_.status.assign(message.empty() ? "error" : message);
}

void Span::SetError(std::string_view message) {
  if (!active()) return;
  SetStatus(message);
  data_->MarkError();
}

void Span::End() {
  if (!active()) return;
  record_.duration_ms = data_->ElapsedMs() - record_.start_ms;
  data_->AppendSpan(std::move(record_));
  data_.reset();
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder() : ring_(kDefaultRingCapacity) {}

TraceRecorder& TraceRecorder::Instance() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::Configure(size_t sample_every, double slow_threshold_ms) {
  sample_every_.store(sample_every, std::memory_order_relaxed);
  slow_threshold_ms_.store(slow_threshold_ms, std::memory_order_relaxed);
}

void TraceRecorder::SetCapacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.assign(std::max<size_t>(capacity, 1), nullptr);
  ring_head_ = 0;
  ring_size_ = 0;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  std::fill(ring_.begin(), ring_.end(), nullptr);
  ring_head_ = 0;
  ring_size_ = 0;
  slow_log_.clear();
  admissions_.store(0, std::memory_order_relaxed);
  started_.store(0, std::memory_order_relaxed);
  kept_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
}

size_t TraceRecorder::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

TraceContext TraceRecorder::StartTrace(std::string_view root_name,
                                       uint64_t trace_id) {
  size_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return TraceContext{};
  if (trace_id == 0) {
    trace_id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }
  auto data = std::make_shared<TraceData>(trace_id);
  data->set_root_name(std::string(root_name));
  // The head decision: the k-th admitted trace (k starting at 0) is kept
  // when k % sample_every == 0 — deterministic for serial request
  // sequences, which is what the sampling-determinism test pins.
  uint64_t admission = admissions_.fetch_add(1, std::memory_order_relaxed);
  data->set_head_sampled(admission % every == 0);
  started_.fetch_add(1, std::memory_order_relaxed);
  return TraceContext{std::move(data), 0};
}

TraceVerdict TraceRecorder::FinishTrace(const TraceContext& ctx,
                                        double wall_ms) {
  TraceVerdict verdict;
  if (!ctx.active()) return verdict;
  TraceData* data = ctx.data.get();
  double slow_ms = slow_threshold_ms_.load(std::memory_order_relaxed);
  data->set_wall_ms(wall_ms);
  data->set_slow(slow_ms > 0.0 && wall_ms >= slow_ms);
  verdict.slow = data->slow();
  verdict.error = data->error();
  verdict.spans = data->span_count();
  verdict.kept = data->head_sampled() || verdict.slow || verdict.error;
  if (verdict.kept) {
    kept_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    ring_[ring_head_] = ctx.data;
    ring_head_ = (ring_head_ + 1) % ring_.size();
    ring_size_ = std::min(ring_size_ + 1, ring_.size());
    if (verdict.slow) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "SLOW %.3fms trace=%s root=%s spans=%zu%s", wall_ms,
                    FormatTraceId(data->trace_id()).c_str(),
                    data->root_name().c_str(), verdict.spans,
                    verdict.error ? " error=1" : "");
      if (slow_log_.size() >= kSlowLogCapacity) {
        slow_log_.erase(slow_log_.begin());
      }
      slow_log_.emplace_back(line);
    }
  } else {
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  return verdict;
}

std::vector<std::shared_ptr<const TraceData>> TraceRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const TraceData>> out;
  out.reserve(ring_size_);
  // Oldest first: the ring head points at the next overwrite slot, which
  // is the oldest entry once the ring has wrapped.
  size_t start = ring_size_ == ring_.size() ? ring_head_ : 0;
  for (size_t i = 0; i < ring_size_; ++i) {
    const auto& slot = ring_[(start + i) % ring_.size()];
    if (slot != nullptr) out.push_back(slot);
  }
  return out;
}

std::vector<std::string> TraceRecorder::SlowLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slow_log_;
}

// ---------------------------------------------------------------------------
// Trace ids
// ---------------------------------------------------------------------------

std::string FormatTraceId(uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(id));
  return std::string(buf, 16);
}

bool ParseTraceId(std::string_view text, uint64_t* id) {
  if (text.empty() || text.size() > 16) return false;
  uint64_t value = 0;
  for (char c : text) {
    uint64_t digit;
    if (c >= '0' && c <= '9') {
      digit = static_cast<uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    value = (value << 4) | digit;
  }
  if (value == 0) return false;
  *id = value;
  return true;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string RenderTraceJson(
    const std::vector<std::shared_ptr<const TraceData>>& traces, double min_ms,
    bool errors_only) {
  std::string out = "{\"traces\":[";
  bool first = true;
  for (const auto& trace : traces) {
    if (trace == nullptr) continue;
    if (trace->wall_ms() < min_ms) continue;
    if (errors_only && !trace->error()) continue;
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"trace_id\":");
    AppendJsonQuoted(&out, FormatTraceId(trace->trace_id()));
    out.append(",\"root\":");
    AppendJsonQuoted(&out, trace->root_name());
    out.append(",\"wall_ms\":");
    AppendJsonNumber(&out, trace->wall_ms());
    out.append(",\"error\":");
    out.append(trace->error() ? "true" : "false");
    out.append(",\"slow\":");
    out.append(trace->slow() ? "true" : "false");
    std::vector<SpanRecord> spans = trace->spans();
    out.append(",\"spans\":");
    AppendChildrenJson(&out, 0, ChildIndex(spans));
    out.push_back('}');
  }
  out.append("]}");
  return out;
}

std::string DumpChromeTrace(
    const std::vector<std::shared_ptr<const TraceData>>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& trace : traces) {
    if (trace == nullptr) continue;
    std::vector<SpanRecord> spans = trace->spans();
    std::sort(spans.begin(), spans.end(),
              [](const SpanRecord& a, const SpanRecord& b) {
                return a.span_id < b.span_id;
              });
    for (const SpanRecord& span : spans) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"name\":");
      AppendJsonQuoted(&out, span.name);
      out.append(",\"cat\":\"soda\",\"ph\":\"X\",\"ts\":");
      AppendJsonNumber(&out, span.start_ms * 1000.0);
      out.append(",\"dur\":");
      AppendJsonNumber(&out, span.duration_ms * 1000.0);
      // One Chrome "process" per trace, spans stacked by creation order:
      // about:tracing renders each request as its own track.
      out.append(",\"pid\":");
      AppendJsonNumber(&out, static_cast<double>(trace->trace_id() &
                                                 0x7fffffff));
      out.append(",\"tid\":");
      AppendJsonNumber(&out, static_cast<double>(span.parent_id));
      out.append(",\"args\":{\"trace_id\":");
      AppendJsonQuoted(&out, FormatTraceId(trace->trace_id()));
      if (!span.status.empty()) {
        out.append(",\"error\":");
        AppendJsonQuoted(&out, span.status);
      }
      for (const TraceAttr& attr : span.attrs) {
        out.push_back(',');
        AppendJsonQuoted(&out, attr.key);
        out.push_back(':');
        AppendAttrValue(&out, attr);
      }
      out.append("}}");
    }
  }
  out.append("]}");
  return out;
}

}  // namespace soda
