#include "common/date.h"

#include <array>
#include <cstdio>

#include "common/strings.h"

namespace soda {

namespace {

// Howard Hinnant's civil-calendar algorithms (public domain).
constexpr int64_t DaysFromCivil(int64_t y, unsigned m, unsigned d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

struct Civil {
  int year;
  unsigned month;
  unsigned day;
};

constexpr Civil CivilFromDays(int64_t z) {
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  return Civil{static_cast<int>(y + (m <= 2)), m, d};
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

constexpr std::array<int, 13> kDaysInMonth = {0,  31, 28, 31, 30, 31, 30,
                                              31, 31, 30, 31, 30, 31};

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

}  // namespace

Date Date::FromYmd(int year, int month, int day) {
  return Date(static_cast<int32_t>(
      DaysFromCivil(year, static_cast<unsigned>(month),
                    static_cast<unsigned>(day))));
}

Result<Date> Date::Parse(std::string_view text) {
  auto parts = Split(text, '-', /*keep_empty=*/true);
  if (parts.size() != 3 || parts[0].size() != 4 || parts[1].size() != 2 ||
      parts[2].size() != 2 || !IsDigits(parts[0]) || !IsDigits(parts[1]) ||
      !IsDigits(parts[2])) {
    return Status::ParseError("expected YYYY-MM-DD, got '" +
                              std::string(text) + "'");
  }
  int y = std::stoi(parts[0]);
  int m = std::stoi(parts[1]);
  int d = std::stoi(parts[2]);
  if (m < 1 || m > 12) {
    return Status::ParseError("month out of range in '" + std::string(text) +
                              "'");
  }
  int max_day = kDaysInMonth[m] + (m == 2 && IsLeap(y) ? 1 : 0);
  if (d < 1 || d > max_day) {
    return Status::ParseError("day out of range in '" + std::string(text) +
                              "'");
  }
  return Date::FromYmd(y, m, d);
}

int Date::year() const { return CivilFromDays(days_).year; }
int Date::month() const { return static_cast<int>(CivilFromDays(days_).month); }
int Date::day() const { return static_cast<int>(CivilFromDays(days_).day); }

std::string Date::ToString() const {
  Civil c = CivilFromDays(days_);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02u-%02u", c.year, c.month, c.day);
  return buf;
}

}  // namespace soda
