// Fixed-size worker pool for the concurrent SODA engine.
//
// The pool is deliberately minimal: a bounded set of workers draining one
// shared FIFO queue, plus a blocking ParallelFor used by the engine to fan
// per-interpretation pipeline work out and join before the merge step.
// A pool of size 0 or 1 degenerates to inline execution on the calling
// thread, which keeps the single-threaded path allocation- and lock-free
// and makes "1 thread" an exact replica of the serial pipeline.

#ifndef SODA_COMMON_THREAD_POOL_H_
#define SODA_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace soda {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers. 0 and 1 both mean "no workers": tasks
  /// run inline on the submitting thread.
  explicit ThreadPool(size_t num_threads) {
    if (num_threads <= 1) return;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  /// Number of worker threads (0 when execution is inline).
  size_t size() const { return workers_.size(); }

  /// Tasks queued but not yet claimed by a worker. A sampled gauge for
  /// the engine's metrics (backlog under bursty batch traffic); always 0
  /// for inline pools.
  size_t queue_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

  /// Enqueues a task. Runs it inline when the pool has no workers.
  void Submit(std::function<void()> task) {
    if (workers_.empty()) {
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(task));
    }
    wake_.notify_one();
  }

  /// Runs body(0) .. body(n-1) across the pool and blocks until all calls
  /// have returned. Indexes are claimed atomically, so the schedule is
  /// nondeterministic but every index runs exactly once. With no workers
  /// the loop runs serially in index order on the calling thread. The
  /// calling thread always participates, so progress is guaranteed even
  /// when every worker is busy with unrelated tasks.
  ///
  /// Exceptions: a body that throws does not take a worker thread down
  /// (no std::terminate). Every remaining claimed index still completes;
  /// the first exception (by completion order) is rethrown on the calling
  /// thread after the join, so callers see ParallelFor itself throw.
  void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
    if (n == 0) return;
    if (workers_.empty() || n == 1) {
      for (size_t i = 0; i < n; ++i) body(i);
      return;
    }
    struct ForState {
      std::mutex mu;
      std::condition_variable done;
      size_t next = 0;       // next unclaimed index
      size_t remaining;      // indexes not yet finished
      size_t total;
      const std::function<void(size_t)>* body;
      std::exception_ptr first_exception;
    };
    auto state = std::make_shared<ForState>();
    state->remaining = n;
    state->total = n;
    state->body = &body;
    auto drain = [state] {
      for (;;) {
        size_t index;
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (state->next >= state->total) return;
          index = state->next++;
        }
        std::exception_ptr thrown;
        try {
          (*state->body)(index);
        } catch (...) {
          thrown = std::current_exception();
        }
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (thrown && !state->first_exception) {
            state->first_exception = thrown;
          }
          if (--state->remaining == 0) {
            state->done.notify_all();
            return;
          }
        }
      }
    };
    // The calling thread is one of the pool's width: with W workers,
    // W - 1 helper tasks plus the caller give exactly W concurrent
    // executors. `state` is captured by shared_ptr, so stragglers that
    // start after the loop already finished see next == total and exit.
    size_t helpers = std::min(n, workers_.size()) - 1;
    for (size_t t = 0; t < helpers; ++t) Submit(drain);
    drain();
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock, [&] { return state->remaining == 0; });
    if (state->first_exception) {
      std::exception_ptr rethrow = state->first_exception;
      lock.unlock();
      std::rethrow_exception(rethrow);
    }
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
        if (stopping_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace soda

#endif  // SODA_COMMON_THREAD_POOL_H_
