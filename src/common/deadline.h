// Monotonic deadline arithmetic for the serving layer.
//
// The HTTP front end (net/http_server.h) budgets every request against a
// wall-clock deadline: the read loop polls against it, admission rejects
// are stamped with the remaining budget, and a response that finished
// computing after its budget expired is replaced by 504. The class is a
// thin wrapper over steady_clock so callers never juggle time_points and
// the "no deadline" case reads as such at call sites.

#ifndef SODA_COMMON_DEADLINE_H_
#define SODA_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>

namespace soda {

class Deadline {
 public:
  /// No deadline: never expires, infinite remaining budget.
  Deadline() = default;

  /// Expires `ms` milliseconds from now. Non-positive budgets construct
  /// an already-expired deadline (useful for tests).
  static Deadline AfterMs(double ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double, std::milli>(ms));
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return !has_deadline_; }

  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds of budget left, clamped to 0. A large sentinel (one
  /// hour) for infinite deadlines, so the value is always safe to feed
  /// to poll()-style timeouts.
  double remaining_ms() const {
    if (!has_deadline_) return 3600.0 * 1000.0;
    std::chrono::duration<double, std::milli> left =
        at_ - std::chrono::steady_clock::now();
    return std::max(0.0, left.count());
  }

 private:
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point at_{};
};

}  // namespace soda

#endif  // SODA_COMMON_DEADLINE_H_
